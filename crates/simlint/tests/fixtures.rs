//! Fixture-based rule tests: every rule has one bad example proven to fire
//! and one allowed example proven to be accepted, plus scoping checks that
//! the path-sensitive rules stay inside their crates.

use simlint::{lint_source, Finding, Rule};

/// A path inside a simulation-state crate (activates R1/R2/R3/R4/R6).
const SIM_PATH: &str = "crates/netsim/src/fixture.rs";
/// One of the two hot-path files (activates R5 as well).
const HOT_PATH: &str = "crates/netsim/src/sim.rs";

fn unallowed(findings: &[Finding], rule: Rule) -> usize {
    findings
        .iter()
        .filter(|f| f.rule == rule && f.allowed.is_none())
        .count()
}

fn allowed(findings: &[Finding], rule: Rule) -> usize {
    findings
        .iter()
        .filter(|f| f.rule == rule && f.allowed.is_some())
        .count()
}

/// The bad fixture must fire its rule, and *only* its rule (anything else
/// means the fixtures drifted).
fn assert_only_rule(findings: &[Finding], rule: Rule) {
    for f in findings {
        assert_eq!(
            f.rule, rule,
            "fixture tripped an unexpected rule: {:?} at line {}",
            f.rule, f.line
        );
    }
}

// --- R1: nondeterministic-map -------------------------------------------

#[test]
fn r1_fires_on_hash_collections() {
    let fs = lint_source(SIM_PATH, include_str!("fixtures/r1_bad.rs"));
    assert_only_rule(&fs, Rule::NondeterministicMap);
    // Import line (2 idents) + two field sites.
    assert_eq!(unallowed(&fs, Rule::NondeterministicMap), 4);
}

#[test]
fn r1_respects_allow_annotations() {
    let fs = lint_source(SIM_PATH, include_str!("fixtures/r1_allowed.rs"));
    assert_eq!(unallowed(&fs, Rule::NondeterministicMap), 0);
    assert_eq!(allowed(&fs, Rule::NondeterministicMap), 4);
    for f in &fs {
        let reason = f.allowed.as_deref().unwrap();
        assert!(!reason.is_empty(), "allow must carry its reason through");
    }
}

#[test]
fn r1_only_applies_to_sim_state_crates() {
    let src = include_str!("fixtures/r1_bad.rs");
    assert!(lint_source("crates/experiments/src/x.rs", src).is_empty());
    assert!(lint_source("crates/bench/src/lib.rs", src).is_empty());
    assert_eq!(
        lint_source("crates/transport/src/x.rs", src).len(),
        4,
        "transport is a sim-state crate"
    );
}

// --- R2: wall-clock ------------------------------------------------------

#[test]
fn r2_fires_on_wall_clock() {
    let fs = lint_source(SIM_PATH, include_str!("fixtures/r2_bad.rs"));
    assert_only_rule(&fs, Rule::WallClock);
    // Instant x2, SystemTime x2, thread::sleep x1.
    assert_eq!(unallowed(&fs, Rule::WallClock), 5);
}

#[test]
fn r2_respects_allow_annotations() {
    let fs = lint_source(SIM_PATH, include_str!("fixtures/r2_allowed.rs"));
    assert_eq!(unallowed(&fs, Rule::WallClock), 0);
    assert_eq!(allowed(&fs, Rule::WallClock), 2);
}

#[test]
fn r2_exempts_bench_crate() {
    let src = include_str!("fixtures/r2_bad.rs");
    assert!(lint_source("crates/bench/src/bin/simbench.rs", src).is_empty());
}

// --- R3: unseeded-rng ----------------------------------------------------

#[test]
fn r3_fires_on_unseeded_rng() {
    let fs = lint_source(SIM_PATH, include_str!("fixtures/r3_bad.rs"));
    assert_only_rule(&fs, Rule::UnseededRng);
    // thread_rng, rand::random(), rand::random::<f64>(), bare random().
    // The `fn random()` definition itself must NOT fire.
    assert_eq!(unallowed(&fs, Rule::UnseededRng), 4);
}

#[test]
fn r3_respects_allow_annotations() {
    let fs = lint_source(SIM_PATH, include_str!("fixtures/r3_allowed.rs"));
    assert_eq!(unallowed(&fs, Rule::UnseededRng), 0);
    assert_eq!(allowed(&fs, Rule::UnseededRng), 1);
}

#[test]
fn r3_applies_everywhere() {
    let src = include_str!("fixtures/r3_bad.rs");
    assert_eq!(
        lint_source("crates/experiments/src/x.rs", src).len(),
        4,
        "the RNG rule has no crate exemptions"
    );
}

// --- R4: lossy-time-cast -------------------------------------------------

#[test]
fn r4_fires_on_time_rate_casts() {
    let fs = lint_source(SIM_PATH, include_str!("fixtures/r4_bad.rs"));
    assert_only_rule(&fs, Rule::LossyTimeCast);
    assert_eq!(unallowed(&fs, Rule::LossyTimeCast), 3);
}

#[test]
fn r4_respects_allow_and_skips_benign_casts() {
    let fs = lint_source(SIM_PATH, include_str!("fixtures/r4_allowed.rs"));
    assert_eq!(unallowed(&fs, Rule::LossyTimeCast), 0);
    // Exactly one real (annotated) lossy cast; the `prio as u64` and
    // `gap as u64` shapes are benign and must not even be reported.
    assert_eq!(allowed(&fs, Rule::LossyTimeCast), 1);
    assert_eq!(fs.len(), 1);
}

// --- R5: hot-path-unwrap -------------------------------------------------

#[test]
fn r5_fires_in_hot_path_non_test_code() {
    let fs = lint_source(HOT_PATH, include_str!("fixtures/r5_bad.rs"));
    assert_only_rule(&fs, Rule::HotPathUnwrap);
    // unwrap + expect in the two pub fns; the #[cfg(test)] module's
    // unwrap/expect are exempt.
    assert_eq!(unallowed(&fs, Rule::HotPathUnwrap), 2);
}

#[test]
fn r5_respects_allow_annotations() {
    let fs = lint_source(HOT_PATH, include_str!("fixtures/r5_allowed.rs"));
    assert_eq!(unallowed(&fs, Rule::HotPathUnwrap), 0);
    assert_eq!(allowed(&fs, Rule::HotPathUnwrap), 2);
}

#[test]
fn r5_only_applies_to_named_hot_paths() {
    let src = include_str!("fixtures/r5_bad.rs");
    assert!(lint_source("crates/netsim/src/node.rs", src).is_empty());
    assert_eq!(
        unallowed(
            &lint_source("crates/simcore/src/sched.rs", src),
            Rule::HotPathUnwrap
        ),
        2
    );
}

// --- R7: hot-path-alloc --------------------------------------------------

#[test]
fn r7_fires_on_hot_path_allocations() {
    let fs = lint_source(HOT_PATH, include_str!("fixtures/r7_bad.rs"));
    assert_only_rule(&fs, Rule::HotPathAlloc);
    // Box::new, vec![], .to_vec(), .clone(); the #[cfg(test)] module's
    // allocations are exempt.
    assert_eq!(unallowed(&fs, Rule::HotPathAlloc), 4);
}

#[test]
fn r7_respects_allow_annotations() {
    let fs = lint_source(HOT_PATH, include_str!("fixtures/r7_allowed.rs"));
    assert_eq!(unallowed(&fs, Rule::HotPathAlloc), 0);
    assert_eq!(allowed(&fs, Rule::HotPathAlloc), 2);
}

#[test]
fn r7_only_applies_to_per_event_files() {
    let src = include_str!("fixtures/r7_bad.rs");
    assert!(lint_source("crates/netsim/src/packet.rs", src).is_empty());
    assert!(lint_source("crates/experiments/src/x.rs", src).is_empty());
    for hot in [
        "crates/netsim/src/sim.rs",
        "crates/netsim/src/node.rs",
        "crates/netsim/src/snapshot.rs",
        "crates/simcore/src/sched.rs",
        "crates/simcore/src/event.rs",
    ] {
        assert_eq!(unallowed(&lint_source(hot, src), Rule::HotPathAlloc), 4);
    }
}

// --- R8: float-order ------------------------------------------------------

#[test]
fn r8_fires_on_float_accumulation() {
    let fs = lint_source(SIM_PATH, include_str!("fixtures/r8_bad.rs"));
    assert_only_rule(&fs, Rule::FloatOrder);
    // sum::<f64>, float-ascribed .sum(), product::<f32>, fold(0.0, ..);
    // the integer sum and the #[cfg(test)] module are exempt.
    assert_eq!(unallowed(&fs, Rule::FloatOrder), 4);
}

#[test]
fn r8_respects_allow_annotations() {
    let fs = lint_source(SIM_PATH, include_str!("fixtures/r8_allowed.rs"));
    assert_eq!(unallowed(&fs, Rule::FloatOrder), 0);
    assert_eq!(allowed(&fs, Rule::FloatOrder), 2);
}

#[test]
fn r8_only_applies_to_sim_state_crates() {
    let src = include_str!("fixtures/r8_bad.rs");
    assert!(lint_source("crates/experiments/src/x.rs", src).is_empty());
    assert!(lint_source("crates/bench/src/lib.rs", src).is_empty());
    assert_eq!(
        unallowed(
            &lint_source("crates/workloads/src/x.rs", src),
            Rule::FloatOrder
        ),
        4,
        "workloads is a sim-state crate"
    );
}

// --- R6: allow-without-reason --------------------------------------------

#[test]
fn r6_fires_on_unjustified_allows() {
    let fs = lint_source(SIM_PATH, include_str!("fixtures/r6_bad.rs"));
    assert_only_rule(&fs, Rule::AllowWithoutReason);
    // Outer #[allow], inner #![allow], and the reasonless simlint::allow.
    assert_eq!(unallowed(&fs, Rule::AllowWithoutReason), 3);
}

#[test]
fn r6_accepts_reason_comments() {
    let fs = lint_source(SIM_PATH, include_str!("fixtures/r6_allowed.rs"));
    assert!(fs.is_empty(), "unexpected findings: {fs:?}");
}

// --- R10: shared-state ----------------------------------------------------

#[test]
fn r10_fires_on_interior_mutability() {
    let fs = lint_source(SIM_PATH, include_str!("fixtures/r10_bad.rs"));
    assert_only_rule(&fs, Rule::SharedState);
    // RefCell import + field, Mutex import + field, AtomicU64 import +
    // field, the std::sync glob, static mut, thread_local!; the
    // #[cfg(test)] module's Cell is exempt.
    assert_eq!(unallowed(&fs, Rule::SharedState), 9);
}

#[test]
fn r10_respects_allow_annotations() {
    let fs = lint_source(SIM_PATH, include_str!("fixtures/r10_allowed.rs"));
    assert_eq!(unallowed(&fs, Rule::SharedState), 0);
    assert_eq!(allowed(&fs, Rule::SharedState), 2);
}

#[test]
fn r10_only_applies_to_pdes_state_crates() {
    let src = include_str!("fixtures/r10_bad.rs");
    assert!(lint_source("crates/experiments/src/x.rs", src).is_empty());
    assert!(lint_source("crates/bench/src/lib.rs", src).is_empty());
    assert_eq!(
        unallowed(&lint_source("crates/core/src/pp.rs", src), Rule::SharedState),
        9,
        "the prioplus algorithm crate holds sim state too"
    );
}

// --- R11: event-exhaustiveness --------------------------------------------

#[test]
fn r11_fires_on_wildcard_critical_dispatch() {
    let fs = lint_source(SIM_PATH, include_str!("fixtures/r11_bad.rs"));
    assert_only_rule(&fs, Rule::EventExhaustiveness);
    // The bare `_` in dispatch(), the trailing `_` after the guarded arm
    // in guarded(), and the FaultKind wildcard; the exhaustive match, the
    // Option match, the guarded `_ if` arm itself, and the #[cfg(test)]
    // module are all exempt.
    assert_eq!(unallowed(&fs, Rule::EventExhaustiveness), 3);
}

#[test]
fn r11_respects_allow_annotations() {
    let fs = lint_source(SIM_PATH, include_str!("fixtures/r11_allowed.rs"));
    assert_eq!(unallowed(&fs, Rule::EventExhaustiveness), 0);
    assert_eq!(allowed(&fs, Rule::EventExhaustiveness), 1);
}

#[test]
fn r11_only_applies_to_pdes_state_crates() {
    let src = include_str!("fixtures/r11_bad.rs");
    assert!(lint_source("crates/experiments/src/x.rs", src).is_empty());
    assert_eq!(
        unallowed(
            &lint_source("crates/core/src/pp.rs", src),
            Rule::EventExhaustiveness
        ),
        3
    );
}
