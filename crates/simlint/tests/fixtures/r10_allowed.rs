//! R10 fixture: annotated interior mutability, plus plain &mut state that
//! must not be reported at all.

// simlint::allow(shared-state, fixture - memoized pure lookup table never observed by sim state)
use std::cell::RefCell;

pub struct Memo {
    // simlint::allow(shared-state, fixture - memoized pure lookup table never observed by sim state)
    table: RefCell<Vec<u64>>,
}

pub fn plain_counter(c: &mut u64) {
    *c += 1;
}
