//! R10 fixture: interior-mutability shared state in a sim-state crate.

use std::cell::RefCell;
use std::sync::atomic::AtomicU64;
use std::sync::Mutex;
use std::sync::*;

static mut GLOBAL_TICKS: u64 = 0;

thread_local! {
    static SCRATCH: Vec<u64> = Vec::new();
}

pub struct State {
    cached: RefCell<u64>,
    shared: Mutex<Vec<u64>>,
    count: AtomicU64,
}

#[cfg(test)]
mod tests {
    use std::cell::Cell;

    #[test]
    fn test_scratch_state_is_exempt() {
        let c = Cell::new(1u8);
        assert_eq!(c.get(), 1);
    }
}
