//! R11 fixture: an annotated wildcard (migration shim) and an exhaustive
//! dispatch that must not be reported at all.

pub enum Event {
    Arrive { pkt: u64 },
    End,
}

pub fn dispatch(ev: &Event) -> u32 {
    match ev {
        Event::Arrive { .. } => 1,
        // simlint::allow(event-exhaustiveness, fixture - migration shim until the new variants land)
        _ => 0,
    }
}

pub fn exhaustive(ev: &Event) -> u32 {
    match ev {
        Event::Arrive { .. } => 1,
        Event::End => 2,
    }
}
