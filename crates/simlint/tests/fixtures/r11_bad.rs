//! R11 fixture: wildcard arms over sim-critical enums.

pub enum Event {
    Arrive { pkt: u64 },
    End,
}

pub enum FaultKind {
    LinkDown,
    LinkUp,
}

pub fn dispatch(ev: &Event) -> u32 {
    match ev {
        Event::Arrive { .. } => 1,
        _ => 0,
    }
}

pub fn exhaustive(ev: &Event) -> u32 {
    match ev {
        Event::Arrive { .. } => 1,
        Event::End => 2,
    }
}

pub fn non_critical(v: Option<u32>) -> u32 {
    match v {
        Some(x) => x,
        _ => 0,
    }
}

pub fn guarded(ev: &Event, ready: bool) -> u32 {
    match ev {
        Event::End => 2,
        _ if ready => 1,
        _ => 0,
    }
}

pub fn faults(k: &FaultKind) -> u32 {
    match k {
        FaultKind::LinkDown => 1,
        _ => 0,
    }
}

#[cfg(test)]
mod tests {
    use super::Event;

    #[test]
    fn test_wildcards_are_exempt() {
        let n = match (Event::End) {
            Event::Arrive { .. } => 1,
            _ => 0,
        };
        assert_eq!(n, 0);
    }
}
