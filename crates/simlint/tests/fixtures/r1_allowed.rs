//! R1 allowed example: every hash-collection site carries an annotation.

// simlint::allow(nondeterministic-map, imports only; every use site is annotated below)
use std::collections::{HashMap, HashSet};

pub struct FlowTable {
    // simlint::allow(nondeterministic-map, probed by key only and never iterated)
    pub flows: HashMap<u32, u64>,
    pub live: HashSet<u32>, // simlint::allow(nondeterministic-map, membership checks only)
}

pub fn probe(t: &FlowTable, id: u32) -> bool {
    t.live.contains(&id)
}
