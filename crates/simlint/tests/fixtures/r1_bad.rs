//! R1 bad example: hash collections in a simulation-state crate.

use std::collections::{HashMap, HashSet};

pub struct FlowTable {
    pub flows: HashMap<u32, u64>,
    pub live: HashSet<u32>,
}

pub fn drain(t: &FlowTable) -> u64 {
    // Iterating a HashMap: the archetypal replay-breaking pattern.
    t.flows.values().sum()
}
