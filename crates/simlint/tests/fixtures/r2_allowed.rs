//! R2 allowed example: wall-clock reads annotated with a justification.

// simlint::allow(wall-clock, progress logging only; never feeds simulated state)
use std::time::Instant;

pub fn log_progress(done: usize) {
    // simlint::allow(wall-clock, operator-facing status line, not sim state)
    let t0 = Instant::now();
    eprintln!("{done} done at {:?}", t0);
}
