//! R2 bad example: wall-clock time in simulation code.

use std::time::{Instant, SystemTime};

pub fn profile() -> u128 {
    let t0 = Instant::now();
    std::thread::sleep(std::time::Duration::from_millis(1));
    let _ = SystemTime::now();
    t0.elapsed().as_millis()
}
