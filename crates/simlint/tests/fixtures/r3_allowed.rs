//! R3 allowed example: unseeded randomness annotated with a justification.

pub fn session_nonce() -> u64 {
    // simlint::allow(unseeded-rng, nonce for a log file name; never enters sim state)
    let n: u64 = rand::random();
    n
}
