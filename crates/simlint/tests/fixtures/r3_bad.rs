//! R3 bad example: randomness that bypasses the seeded simcore RNG.

pub fn jitter() -> f64 {
    let mut rng = rand::thread_rng();
    let a: f64 = rand::random();
    let b: f64 = rand::random::<f64>();
    let c = random();
    a + b + c + noise(&mut rng)
}

fn noise<T>(_rng: &mut T) -> f64 {
    0.0
}

fn random() -> f64 {
    0.5
}
