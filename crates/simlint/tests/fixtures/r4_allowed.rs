//! R4 allowed example: each lossy cast is annotated, and the benign cast
//! shapes (no Time/Rate in the operand) are not flagged at all.

use simcore::Time;

pub fn mixed(t: Time, prio: u8, gap: f64) -> (i64, Time, Time) {
    // simlint::allow(lossy-time-cast, ps fits i64 for any sim horizon; sentinel encoding)
    let signed = t.as_ps() as i64;
    // Benign: the cast operand is `prio`, not a Time value.
    let shifted = Time::from_us(4 * (prio as u64 + 1));
    // Benign: `gap` is already a plain f64 sample.
    let gap_t = Time::from_ps(gap as u64);
    (signed, shifted, gap_t)
}
