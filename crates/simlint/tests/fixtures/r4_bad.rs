//! R4 bad example: bare `as` casts on Time/Rate-derived values.

use simcore::{Rate, Time};

pub fn truncating(t: Time, r: Rate) -> (u64, i64, u64) {
    let whole_us = (t.as_us_f64() * 2.0) as u64;
    let signed_ps = Time::from_ms(5).as_ps() as i64;
    let gbps = r.as_gbps_f64() as u64;
    (whole_us, signed_ps, gbps)
}
