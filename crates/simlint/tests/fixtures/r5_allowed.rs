//! R5 allowed example: hot-path unwraps annotated with why they hold.

pub fn pop_checked(v: &mut Vec<u32>) -> u32 {
    assert!(!v.is_empty());
    // simlint::allow(hot-path-unwrap, guarded by the assert one line up)
    v.pop().unwrap()
}

pub fn take_checked(o: Option<u32>) -> u32 {
    // simlint::allow(hot-path-unwrap, all call sites construct Some; see module docs)
    o.expect("constructed as Some")
}
