//! R5 bad example: unwrap/expect in hot-path (non-test) code.

pub fn pop_front(v: &mut Vec<u32>) -> u32 {
    v.pop().unwrap()
}

pub fn take(o: Option<u32>) -> u32 {
    o.expect("caller checked")
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_test_code_is_fine() {
        let x: Option<u32> = Some(1);
        assert_eq!(x.unwrap(), 1);
        let y: Result<u32, ()> = Ok(2);
        assert_eq!(y.expect("test data"), 2);
    }
}
