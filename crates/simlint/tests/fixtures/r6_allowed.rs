//! R6 allowed example: every allow attribute carries a reason comment.

// Kept for API parity with the vendored shim; exercised by downstream crates.
#[allow(dead_code)]
fn reserved() {}

#[allow(clippy::too_many_arguments)] // violation records carry every reportable dimension
fn wide(_a: u8, _b: u8, _c: u8, _d: u8, _e: u8, _f: u8, _g: u8, _h: u8) {}
