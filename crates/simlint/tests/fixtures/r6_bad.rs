//! R6 bad example: lint-allow attributes with no stated reason.

#[allow(dead_code)]
fn unused() {}

#![allow(clippy::too_many_arguments)]

// An annotation missing its reason is itself an allow-without-reason.
// simlint::allow(hot-path-unwrap)
fn also_bad() {}
