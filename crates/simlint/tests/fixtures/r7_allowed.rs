//! R7 allowed example: hot-path allocations annotated with why they are
//! off the per-event path.

pub struct Pool {
    free: Vec<Box<u64>>,
}

impl Pool {
    pub fn take(&mut self) -> Box<u64> {
        match self.free.pop() {
            Some(b) => b,
            // simlint::allow(hot-path-alloc, pool refill: runs only until the population peaks)
            None => Box::new(0),
        }
    }
}

pub fn build_state(n: usize) -> Vec<u64> {
    // simlint::allow(hot-path-alloc, construction-time buffer sized once per run)
    vec![0; n]
}
