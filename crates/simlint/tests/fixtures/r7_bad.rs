//! R7 bad example: per-event heap allocation in hot-path (non-test) code.

pub fn box_per_event(v: u64) -> Box<u64> {
    Box::new(v)
}

pub fn vec_per_event(n: usize) -> Vec<u64> {
    vec![0; n]
}

pub fn copy_slice(s: &[u64]) -> Vec<u64> {
    s.to_vec()
}

pub fn copy_container(v: &Vec<u64>) -> Vec<u64> {
    v.clone()
}

#[cfg(test)]
mod tests {
    #[test]
    fn allocations_in_test_code_are_fine() {
        let b = Box::new(1u64);
        let v = vec![*b; 3];
        let w = v.to_vec();
        assert_eq!(w.clone(), v);
    }
}
