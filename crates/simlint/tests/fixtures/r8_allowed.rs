//! R8 allowed example: float accumulations annotated with why the
//! iteration order is pinned (observability-only values computed over a
//! Vec in insertion order).

pub fn report_mean(samples: &[f64]) -> f64 {
    // simlint::allow(float-order, observability only: slice iterated in fixed insertion order)
    samples.iter().sum::<f64>() / samples.len() as f64
}

pub fn report_total(samples: &[f64]) -> f64 {
    // simlint::allow(float-order, reporting edge: accumulates a Vec in its recorded order)
    samples.iter().fold(0.0, |acc, s| acc + s)
}
