//! R8 bad example: float accumulation over iterated collections in
//! sim-state code — turbofish sum, float-ascribed sum, and a float-seeded
//! fold all fire; test-module accumulation is exempt.

pub fn turbofish_sum(samples: &[f64]) -> f64 {
    samples.iter().sum::<f64>()
}

pub fn ascribed_sum(samples: &[f64]) -> f64 {
    let total: f64 = samples.iter().copied().sum();
    total
}

pub fn turbofish_product(factors: &[f32]) -> f32 {
    factors.iter().product::<f32>()
}

pub fn seeded_fold(samples: &[f64]) -> f64 {
    samples.iter().fold(0.0, |acc, s| acc + s)
}

pub fn integer_sum_is_fine(bytes: &[u64]) -> u64 {
    bytes.iter().sum()
}

#[cfg(test)]
mod tests {
    #[test]
    fn float_sums_in_test_code_are_fine() {
        let mean = [1.0f64, 2.0, 3.0].iter().sum::<f64>() / 3.0;
        let folded = [1.0f64, 2.0].iter().fold(0.0, |a, b| a + b);
        assert!(mean > 1.9 && folded > 2.9);
    }
}
