//! R9 fixture: the same upward reference, annotated for a migration
//! window.

// simlint::allow(layering, fixture - migration window while the report types move down a layer)
use experiments::report::Tables;

pub fn summarize() -> Tables {
    experiments::report::tables()
}
