//! R9 fixture: an upward crate reference — a sim-state crate (this file is
//! linted as netsim source) reaching into the experiments driver layer.

use experiments::report::Tables;

pub fn summarize() -> Tables {
    experiments::report::tables()
}
