//! Workspace-level semantic-pass tests: R9 layering over in-memory
//! mini-workspaces (crate edges from manifests and source, module cycles,
//! unlayered crates), plus the text/JSON output ordering regression.

use simlint::{Baseline, Rule, Workspace};

fn manifest(name: &str, deps: &[&str], dev_deps: &[&str]) -> String {
    let mut s = format!("[package]\nname = \"{name}\"\nversion = \"0.1.0\"\n");
    if !deps.is_empty() {
        s.push_str("\n[dependencies]\n");
        for d in deps {
            s.push_str(&format!("{d} = {{ workspace = true }}\n"));
        }
    }
    if !dev_deps.is_empty() {
        s.push_str("\n[dev-dependencies]\n");
        for d in dev_deps {
            s.push_str(&format!("{d} = {{ workspace = true }}\n"));
        }
    }
    s
}

/// A three-crate slice of the real layer map, wired correctly.
fn mini_workspace() -> Workspace {
    let mut ws = Workspace::new();
    ws.add("crates/simcore/Cargo.toml", &manifest("simcore", &[], &[]));
    ws.add("crates/netsim/Cargo.toml", &manifest("netsim", &["simcore"], &[]));
    ws.add(
        "crates/experiments/Cargo.toml",
        &manifest("experiments", &["simcore", "netsim"], &[]),
    );
    ws.add("crates/simcore/src/lib.rs", "pub fn tick() {}\n");
    ws.add("crates/netsim/src/lib.rs", "pub mod sim;\n");
    ws.add(
        "crates/netsim/src/sim.rs",
        "pub fn run() {\n    simcore::tick();\n}\n",
    );
    ws.add(
        "crates/experiments/src/lib.rs",
        "pub fn fig() {\n    netsim::sim::run();\n}\n",
    );
    ws
}

fn layering(ws: &Workspace) -> Vec<(String, u32, String)> {
    ws.lint()
        .findings
        .iter()
        .filter(|(_, f)| f.rule == Rule::Layering && f.allowed.is_none())
        .map(|(p, f)| (p.clone(), f.line, f.message.clone()))
        .collect()
}

#[test]
fn downward_edges_are_clean() {
    let ws = mini_workspace();
    let report = ws.lint();
    assert!(
        report.findings.is_empty(),
        "unexpected findings: {report}"
    );
    assert_eq!(report.crates_indexed, 3);
}

#[test]
fn upward_use_in_netsim_is_caught() {
    // The acceptance case: an intentionally-inserted `use experiments::…`
    // inside netsim must be flagged.
    let mut ws = mini_workspace();
    ws.add(
        "crates/netsim/src/report.rs",
        include_str!("fixtures/r9_bad.rs"),
    );
    let hits = layering(&ws);
    assert_eq!(hits.len(), 1, "got: {hits:?}");
    let (path, line, msg) = &hits[0];
    assert_eq!(path, "crates/netsim/src/report.rs");
    assert_eq!(*line, 4, "the finding pins the first upward reference");
    assert!(msg.contains("layering violation"), "got: {msg}");
    assert!(msg.contains("netsim") && msg.contains("experiments"));
}

#[test]
fn upward_use_respects_allow_annotation() {
    let mut ws = mini_workspace();
    ws.add(
        "crates/netsim/src/report.rs",
        include_str!("fixtures/r9_allowed.rs"),
    );
    assert!(layering(&ws).is_empty());
    let report = ws.lint();
    assert_eq!(report.allowed_count(), 1, "the allow carries through");
}

#[test]
fn upward_manifest_dependency_is_caught() {
    let mut ws = mini_workspace();
    ws.add(
        "crates/netsim/Cargo.toml",
        &manifest("netsim", &["simcore", "experiments"], &[]),
    );
    let hits = layering(&ws);
    assert_eq!(hits.len(), 1, "got: {hits:?}");
    let (path, _, msg) = &hits[0];
    assert_eq!(path, "crates/netsim/Cargo.toml");
    assert!(msg.contains("dependency on experiments"), "got: {msg}");
}

#[test]
fn dev_dependency_back_edge_is_caught() {
    // Cargo allows dev-dependency cycles; the one-way DAG does not.
    let mut ws = mini_workspace();
    ws.add(
        "crates/simcore/Cargo.toml",
        &manifest("simcore", &[], &["netsim"]),
    );
    let hits = layering(&ws);
    assert_eq!(hits.len(), 1, "got: {hits:?}");
    assert!(hits[0].2.contains("simcore"), "got: {}", hits[0].2);
}

#[test]
fn peer_crates_cannot_depend_on_each_other() {
    // netsim and prioplus share a layer deliberately; an edge in either
    // direction is a violation (strictly-downward rule).
    let mut ws = mini_workspace();
    ws.add("crates/core/Cargo.toml", &manifest("prioplus", &["simcore"], &[]));
    ws.add("crates/core/src/lib.rs", "pub fn window() {}\n");
    ws.add(
        "crates/netsim/Cargo.toml",
        &manifest("netsim", &["simcore", "prioplus"], &[]),
    );
    let hits = layering(&ws);
    assert_eq!(hits.len(), 1, "got: {hits:?}");
    assert!(hits[0].2.contains("layering violation"));
}

#[test]
fn unlayered_crates_are_isolated() {
    let mut ws = mini_workspace();
    ws.add(
        "crates/newthing/Cargo.toml",
        &manifest("newthing", &["simcore"], &[]),
    );
    ws.add("crates/newthing/src/lib.rs", "pub fn x() {}\n");
    let hits = layering(&ws);
    assert_eq!(hits.len(), 1, "got: {hits:?}");
    assert!(
        hits[0].2.contains("no layer"),
        "a crate missing from the layer map must be called out: {}",
        hits[0].2
    );
}

#[test]
fn module_cycle_is_caught_on_every_edge() {
    let mut ws = mini_workspace();
    ws.add(
        "crates/netsim/src/lib.rs",
        "pub mod node;\npub mod sim;\n",
    );
    ws.add(
        "crates/netsim/src/sim.rs",
        "use crate::node::Switch;\npub struct Sim {\n    pub s: Switch,\n}\n",
    );
    ws.add(
        "crates/netsim/src/node.rs",
        "pub struct Switch;\npub fn poke() {\n    let _ = crate::sim::Sim { s: Switch };\n}\n",
    );
    let hits = layering(&ws);
    assert_eq!(hits.len(), 2, "one finding per edge of the cycle: {hits:?}");
    for (_, _, msg) in &hits {
        assert!(msg.contains("module cycle in crate netsim"), "got: {msg}");
        assert!(msg.contains("sim") && msg.contains("node"));
    }
}

#[test]
fn module_cycle_ignores_test_regions() {
    // A test module reaching back across modules is dev-only dispatch, not
    // a sim-state cycle.
    let mut ws = mini_workspace();
    ws.add("crates/netsim/src/lib.rs", "pub mod node;\npub mod sim;\n");
    ws.add(
        "crates/netsim/src/sim.rs",
        "use crate::node::Switch;\npub fn run(_s: &Switch) {}\n",
    );
    ws.add(
        "crates/netsim/src/node.rs",
        "pub struct Switch;\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() {\n        crate::sim::run(&super::Switch);\n    }\n}\n",
    );
    assert!(layering(&ws).is_empty());
}

#[test]
fn report_ordering_is_stable_across_text_and_json() {
    let mut ws = mini_workspace();
    // Findings in several files, added in non-sorted order.
    ws.add(
        "crates/netsim/src/zeta.rs",
        "use std::collections::HashMap;\npub fn z(_m: HashMap<u32, u32>) {}\n",
    );
    ws.add(
        "crates/netsim/src/alpha.rs",
        "use std::cell::RefCell;\npub struct A {\n    c: RefCell<u32>,\n}\n",
    );
    ws.add(
        "crates/netsim/src/report.rs",
        include_str!("fixtures/r9_bad.rs"),
    );
    let report = ws.lint();
    assert!(report.findings.len() >= 4);

    // Globally sorted by (path, line, col, rule).
    let keys: Vec<_> = report
        .findings
        .iter()
        .map(|(p, f)| (p.clone(), f.line, f.col, f.rule))
        .collect();
    let mut sorted = keys.clone();
    sorted.sort();
    assert_eq!(keys, sorted, "findings must come out globally sorted");

    // The text rendering preserves that order.
    let text = format!("{report}");
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), report.findings.len());
    for (line, (p, f)) in lines.iter().zip(&report.findings) {
        assert!(line.starts_with(&format!("{p}:{}:", f.line)));
    }

    // The JSON rendering lists findings in the same order, and is
    // byte-stable across repeated calls.
    let json = report.to_json(&Baseline::default());
    assert_eq!(json, report.to_json(&Baseline::default()));
    let mut last = 0usize;
    for (p, f) in &report.findings {
        let needle = format!("{{\"path\": \"{p}\", \"line\": {}", f.line);
        let pos = json[last..]
            .find(&needle)
            .unwrap_or_else(|| panic!("JSON missing or out of order: {needle}"));
        last += pos + needle.len();
    }
    assert!(json.contains("\"summary\""));
    assert!(json.contains("\"crates_indexed\": 3"));
}

#[test]
fn json_escapes_special_characters() {
    let mut ws = mini_workspace();
    ws.add(
        "crates/netsim/src/q.rs",
        "use std::collections::HashMap;\npub fn q(_m: HashMap<u8, u8>) {}\n",
    );
    let json = ws.lint().to_json(&Baseline::default());
    // Messages may contain slashes and quotes; the emitted JSON must stay
    // parseable by the dumbest consumer: balanced braces, no raw newlines
    // inside strings.
    for line in json.lines() {
        assert_eq!(line.matches('"').count() % 2, 0, "unbalanced quotes: {line}");
    }
}
