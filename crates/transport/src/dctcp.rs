//! DCTCP (Alizadeh et al., SIGCOMM '10) and its deadline-aware extension
//! D2TCP (Vamanan et al., SIGCOMM '12) — the ECN-based baseline §3.1 uses
//! to show that single-bit congestion signals cannot provide strict
//! virtual priority.
//!
//! DCTCP maintains an EWMA `alpha` of the fraction of ECN-marked bytes per
//! RTT and cuts the window by `alpha/2` once per RTT when marks occur.
//! D2TCP exponentiates: the cut becomes `p/2` with `p = alpha^d`, where the
//! urgency `d` grows as the deadline approaches (`d` clamped to
//! `[0.5, 2]`): far-deadline flows back off more, near-deadline flows less.

use netsim::{AckEvent, AckKind, FlowParams, Transport, TransportCtx, TrySend};
use simcore::event::ScheduledId;
use simcore::Time;

use crate::sender::{SenderBase, RTO_TOKEN};

/// Configuration for a DCTCP/D2TCP flow.
#[derive(Clone, Copy, Debug)]
pub struct D2tcpConfig {
    /// EWMA gain `g` for the marked fraction.
    pub g: f64,
    /// Additive increase per RTT, bytes (one MTU in the papers).
    pub ai: f64,
    /// Initial window, bytes.
    pub init_cwnd: f64,
    /// Minimum window, bytes.
    pub min_cwnd: f64,
    /// Maximum window, bytes.
    pub max_cwnd: f64,
    /// Absolute deadline; `None` runs plain DCTCP (urgency fixed at 1).
    pub deadline: Option<Time>,
    /// MTU bytes.
    pub mtu: u32,
}

impl D2tcpConfig {
    /// Defaults per the papers, deadline unset (plain DCTCP).
    pub fn dctcp(mtu: u32, init_cwnd: f64) -> Self {
        D2tcpConfig {
            g: 1.0 / 16.0,
            ai: mtu as f64,
            init_cwnd,
            min_cwnd: mtu as f64,
            max_cwnd: 10_000_000.0,
            deadline: None,
            mtu,
        }
    }

    /// D2TCP with the given absolute deadline.
    pub fn with_deadline(mut self, deadline: Time) -> Self {
        self.deadline = Some(deadline);
        self
    }
}

/// DCTCP/D2TCP transport.
#[derive(Clone, Debug)]
pub struct DctcpTransport {
    base: SenderBase,
    cfg: D2tcpConfig,
    cwnd: f64,
    alpha: f64,
    /// Per-window mark accounting.
    acked_bytes_win: u64,
    marked_bytes_win: u64,
    win_end_seq: u64,
    slow_start: bool,
    rto_timer: Option<ScheduledId>,
}

impl DctcpTransport {
    /// New transport.
    pub fn new(params: FlowParams, cfg: D2tcpConfig) -> Self {
        DctcpTransport {
            base: SenderBase::new(params),
            cwnd: cfg.init_cwnd.clamp(cfg.min_cwnd, cfg.max_cwnd),
            alpha: 0.0,
            acked_bytes_win: 0,
            marked_bytes_win: 0,
            win_end_seq: 0,
            slow_start: true,
            rto_timer: None,
            cfg,
        }
    }

    /// Current `alpha` estimate (diagnostics).
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Deadline urgency `d` (D2TCP §3): `d = Tc / D` clamped to `[0.5, 2]`,
    /// where `Tc` is the projected completion time at the current rate and
    /// `D` the time to the deadline. Plain DCTCP returns 1.
    pub fn urgency(&self, now: Time) -> f64 {
        let Some(deadline) = self.cfg.deadline else {
            return 1.0;
        };
        if deadline <= now {
            return 2.0;
        }
        let remaining_bytes = (self.base.params.size - self.base.acked) as f64;
        let rate = self.cwnd / self.base.srtt.as_secs_f64().max(1e-9);
        let tc = remaining_bytes / rate.max(1.0);
        let d_secs = (deadline - now).as_secs_f64();
        (tc / d_secs).clamp(0.5, 2.0)
    }

    fn arm_rto(&mut self, ctx: &mut TransportCtx<'_>) {
        if let Some(id) = self.rto_timer.take() {
            ctx.cancel_timer(id);
        }
        let at = ctx.now + self.base.rto();
        self.rto_timer = Some(ctx.schedule_timer(at, RTO_TOKEN));
    }

    fn end_of_window(&mut self, now: Time) {
        let f = if self.acked_bytes_win == 0 {
            0.0
        } else {
            self.marked_bytes_win as f64 / self.acked_bytes_win as f64
        };
        self.alpha = (1.0 - self.cfg.g) * self.alpha + self.cfg.g * f;
        if self.marked_bytes_win > 0 {
            self.slow_start = false;
            let d = self.urgency(now);
            let p = self.alpha.powf(d);
            self.cwnd *= 1.0 - p / 2.0;
        } else if self.slow_start {
            self.cwnd *= 2.0;
        } else {
            self.cwnd += self.cfg.ai;
        }
        self.cwnd = self.cwnd.clamp(self.cfg.min_cwnd, self.cfg.max_cwnd);
        self.acked_bytes_win = 0;
        self.marked_bytes_win = 0;
        self.win_end_seq = self.base.snd_nxt;
    }
}

impl Transport for DctcpTransport {
    fn clone_box(&self) -> Box<dyn Transport> {
        Box::new(self.clone())
    }

    fn on_start(&mut self, ctx: &mut TransportCtx<'_>) {
        self.arm_rto(ctx);
    }

    fn on_ack(&mut self, ack: &AckEvent, ctx: &mut TransportCtx<'_>) {
        if ack.kind != AckKind::Data {
            return;
        }
        let newly = self.base.on_ack(ack, ctx.now);
        self.acked_bytes_win += newly.max(ack.acked_bytes) as u64;
        if ack.ecn_echo {
            self.marked_bytes_win += newly.max(ack.acked_bytes) as u64;
        }
        if ack.acked_seq >= self.win_end_seq {
            self.end_of_window(ctx.now);
        }
        ctx.trace_delay(ack.delay);
        ctx.trace_cwnd(self.cwnd);
        if !self.base.finished() {
            self.arm_rto(ctx);
        } else if let Some(id) = self.rto_timer.take() {
            ctx.cancel_timer(id);
        }
    }

    fn on_timer(&mut self, token: u64, ctx: &mut TransportCtx<'_>) {
        if token != RTO_TOKEN || self.base.finished() {
            return;
        }
        if ctx.now.saturating_sub(self.base.last_ack) >= self.base.rto()
            && !self.base.outstanding.is_empty()
        {
            self.base.rto_recover();
            self.cwnd = self.cfg.min_cwnd;
        }
        self.arm_rto(ctx);
    }

    fn try_send(&mut self, now: Time) -> TrySend {
        self.base.try_send(self.cwnd, now)
    }

    fn on_sent(&mut self, sent: TrySend, ctx: &mut TransportCtx<'_>) {
        self.base.on_sent(sent, self.cwnd, ctx.now);
    }

    fn is_finished(&self) -> bool {
        self.base.finished()
    }

    fn cwnd_bytes(&self) -> f64 {
        self.cwnd
    }

    fn retransmits(&self) -> u64 {
        self.base.retransmits
    }

    fn check_invariants(&self) -> Result<(), String> {
        self.base.check_invariants()?;
        if !self.cwnd.is_finite() {
            return Err(format!("dctcp cwnd {} is not finite", self.cwnd));
        }
        if self.cwnd < self.cfg.min_cwnd || self.cwnd > self.cfg.max_cwnd {
            return Err(format!(
                "dctcp cwnd {} outside [{}, {}]",
                self.cwnd, self.cfg.min_cwnd, self.cfg.max_cwnd
            ));
        }
        if !self.alpha.is_finite() || !(0.0..=1.0).contains(&self.alpha) {
            return Err(format!("dctcp alpha {} outside [0, 1]", self.alpha));
        }
        if self.marked_bytes_win > self.acked_bytes_win {
            return Err(format!(
                "dctcp marked bytes {} exceed acked bytes {} in window",
                self.marked_bytes_win, self.acked_bytes_win
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::Rate;

    fn params(size: u64) -> FlowParams {
        FlowParams {
            flow: 0,
            size,
            line_rate: Rate::from_gbps(100),
            base_rtt: Time::from_us(12),
            base_rtt_probe: Time::from_us(11),
            mtu: 1000,
            virt_prio: 0,
            seed: 1,
        }
    }

    fn ack(seq: u64, ecn: bool) -> AckEvent {
        AckEvent {
            kind: AckKind::Data,
            delay: Time::from_us(14),
            cum_bytes: seq + 1000,
            acked_seq: seq,
            acked_bytes: 1000,
            ecn_echo: ecn,
            nack: None,
            int: None,
        }
    }

    #[test]
    fn alpha_converges_to_mark_fraction() {
        let mut t = DctcpTransport::new(params(100_000_000), D2tcpConfig::dctcp(1000, 10_000.0));
        // Feed 200 windows of fully-marked ACK streams: alpha -> 1.
        let mut seq = 0u64;
        for _ in 0..200 {
            t.base.snd_nxt = seq + 10_000;
            for i in 0..10 {
                t.base.outstanding.insert(seq + i * 1000);
                t.base.on_ack(&ack(seq + i * 1000, true), Time::ZERO);
                t.acked_bytes_win += 1000;
                t.marked_bytes_win += 1000;
            }
            t.end_of_window(Time::from_us(1));
            seq += 10_000;
        }
        assert!(t.alpha() > 0.95, "alpha {}", t.alpha());
    }

    #[test]
    fn unmarked_windows_grow_marked_windows_shrink() {
        let mut t = DctcpTransport::new(params(100_000_000), D2tcpConfig::dctcp(1000, 10_000.0));
        t.slow_start = false;
        t.acked_bytes_win = 10_000;
        t.marked_bytes_win = 0;
        t.end_of_window(Time::from_us(1));
        assert_eq!(t.cwnd_bytes(), 11_000.0);
        // Now a fully marked window.
        t.alpha = 1.0;
        t.acked_bytes_win = 10_000;
        t.marked_bytes_win = 10_000;
        let w = t.cwnd_bytes();
        t.end_of_window(Time::from_us(2));
        assert!(t.cwnd_bytes() < w * 0.6, "cut should approach 1/2");
    }

    #[test]
    fn urgency_rises_as_deadline_nears() {
        let cfg = D2tcpConfig::dctcp(1000, 10_000.0).with_deadline(Time::from_ms(1));
        let t = DctcpTransport::new(params(100_000), cfg);
        let far = t.urgency(Time::from_us(10));
        let near = t.urgency(Time::from_us(990));
        assert!(near > far, "near {near} far {far}");
        assert!(near <= 2.0 && far >= 0.5);
    }

    #[test]
    fn past_deadline_is_maximum_urgency() {
        let cfg = D2tcpConfig::dctcp(1000, 10_000.0).with_deadline(Time::from_us(10));
        let t = DctcpTransport::new(params(10_000_000), cfg);
        assert_eq!(t.urgency(Time::from_us(20)), 2.0);
    }

    #[test]
    fn plain_dctcp_urgency_is_one() {
        let t = DctcpTransport::new(params(1_000), D2tcpConfig::dctcp(1000, 10_000.0));
        assert_eq!(t.urgency(Time::from_ms(5)), 1.0);
    }

    #[test]
    fn d2tcp_urgent_flow_cuts_less() {
        // Same alpha, different urgency: near-deadline flow keeps more window.
        let mk = |deadline_us: u64| {
            let cfg = D2tcpConfig::dctcp(1000, 100_000.0).with_deadline(Time::from_us(deadline_us));
            let mut t = DctcpTransport::new(params(1_000_000), cfg);
            t.slow_start = false;
            t.alpha = 0.5;
            t.acked_bytes_win = 10_000;
            t.marked_bytes_win = 10_000;
            t.end_of_window(Time::from_us(1));
            t.cwnd_bytes()
        };
        let urgent = mk(15); // nearly due
        let relaxed = mk(1_000_000); // far in the future
        assert!(
            urgent > relaxed,
            "urgent flow must decelerate less: {urgent} vs {relaxed}"
        );
    }

    #[test]
    fn slow_start_doubles_until_first_mark() {
        let mut t = DctcpTransport::new(params(100_000_000), D2tcpConfig::dctcp(1000, 2_000.0));
        t.acked_bytes_win = 2_000;
        t.end_of_window(Time::from_us(1));
        assert_eq!(t.cwnd_bytes(), 4_000.0);
        t.acked_bytes_win = 4_000;
        t.marked_bytes_win = 4_000;
        t.end_of_window(Time::from_us(2));
        assert!(!t.slow_start);
        t.acked_bytes_win = 4_000;
        t.end_of_window(Time::from_us(3));
        // After the mark, growth is additive.
        let w = t.cwnd_bytes();
        t.acked_bytes_win = 4_000;
        t.end_of_window(Time::from_us(4));
        assert!((t.cwnd_bytes() - w - 1000.0).abs() < 1e-6);
    }
}
