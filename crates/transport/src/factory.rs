//! Transport factories: turn a declarative [`CcSpec`] plus per-flow
//! [`FlowParams`] into a boxed [`Transport`]. This is the only API the
//! experiment harness needs.

use netsim::{FlowParams, Transport};
use prioplus::{ChannelConfig, PrioPlusConfig};
use simcore::Time;

use crate::dctcp::{D2tcpConfig, DctcpTransport};
use crate::hpcc::{HpccConfig, HpccTransport};
use crate::ledbat::{LedbatCc, LedbatConfig};
use crate::nocc::BlastTransport;
use crate::plain::CcTransport;
use crate::pp_transport::PrioPlusTransport;
use crate::sender::SenderBase;
use crate::swift::{SwiftCc, SwiftConfig};

/// Per-deployment PrioPlus policy: channel geometry plus the §4.4 tiering
/// of `W_LS` and probe-before-start by priority.
#[derive(Clone, Copy, Debug)]
pub struct PrioPlusPolicy {
    /// Fluctuation allowance `A`.
    pub fluct: Time,
    /// Noise allowance `B` (also used as the `delay == BaseRtt` epsilon).
    pub noise: Time,
    /// Number of virtual priorities in the ladder.
    pub num_prios: u8,
    /// `W_LS` as a fraction of base BDP for the highest priority.
    pub w_ls_high: f64,
    /// `W_LS` fraction for middle priorities.
    pub w_ls_mid: f64,
    /// `W_LS` fraction for low priorities.
    pub w_ls_low: f64,
    /// Probe before the first transmission for mid/low tiers (§4.2.1).
    /// §4.4 exempts latency-sensitive traffic: scheduling scenarios where
    /// every class is FCT-sensitive set this to `false` and rely on the
    /// (tiered) linear start alone.
    pub probe: bool,
}

impl PrioPlusPolicy {
    /// The paper's configuration: 4 µs channels (A = 3.2 µs, B = 0.8 µs),
    /// `W_LS` of 1 / 0.25 / 0.125 base BDP for high / mid / low tiers.
    pub fn paper_default(num_prios: u8) -> Self {
        PrioPlusPolicy {
            fluct: Time::from_us_f64(3.2),
            noise: Time::from_us_f64(0.8),
            num_prios,
            w_ls_high: 1.0,
            w_ls_mid: 0.25,
            w_ls_low: 0.125,
            probe: true,
        }
    }

    /// Channel ladder for a flow with the given base RTT.
    pub fn channels(&self, base_rtt: Time) -> ChannelConfig {
        ChannelConfig::new(base_rtt, self.fluct, self.noise)
    }

    /// Priority tier: the single highest priority is "high" (linear start
    /// without probing, §4.4); the bottom quarter is "low"; the rest "mid".
    fn tier(&self, prio: u8) -> (f64, bool) {
        if self.num_prios <= 1 || prio >= self.num_prios - 1 {
            (self.w_ls_high, false)
        } else if prio < self.num_prios / 4 {
            (self.w_ls_low, self.probe)
        } else {
            (self.w_ls_mid, self.probe)
        }
    }

    /// Full PrioPlus configuration for one flow.
    pub fn flow_config(&self, params: &FlowParams) -> PrioPlusConfig {
        let chan = self.channels(params.base_rtt);
        let prio = params.virt_prio.min(self.num_prios.saturating_sub(1));
        let (w_ls_frac, probe_before_start) = self.tier(prio);
        PrioPlusConfig {
            d_target: chan.d_target(prio),
            d_limit: chan.d_limit(prio),
            base_rtt: params.base_rtt,
            near_base_eps: self.noise,
            w_ls: (w_ls_frac * params.base_bdp()).max(params.mtu as f64),
            line_rate: params.line_rate,
            probe_before_start,
            mtu: params.mtu,
            seed: params.seed,
            dual_rtt: true,
        }
    }
}

/// Declarative transport choice for a scenario. Delay-target offsets are
/// relative to each flow's own base RTT (paths differ in a fat-tree).
#[derive(Clone, Copy, Debug)]
pub enum CcSpec {
    /// Plain Swift with the given queuing-delay target.
    Swift {
        /// Queuing budget added to the base RTT to form the target.
        queuing: Time,
        /// Enable flow-based target scaling.
        scaling: bool,
    },
    /// PrioPlus integrated with Swift (the paper's system). Swift's target
    /// is taken from the flow's channel; target scaling is disabled.
    PrioPlusSwift {
        /// Deployment policy.
        policy: PrioPlusPolicy,
    },
    /// Plain LEDBAT with the given queuing target.
    Ledbat {
        /// Queuing-delay target.
        queuing: Time,
    },
    /// PrioPlus integrated with LEDBAT (§6.2).
    PrioPlusLedbat {
        /// Deployment policy.
        policy: PrioPlusPolicy,
    },
    /// DCTCP, optionally deadline-aware (D2TCP) with deadline =
    /// `flow size / line rate * factor` after flow start.
    D2tcp {
        /// Deadline as a multiple of the ideal FCT; `None` = plain DCTCP.
        deadline_factor: Option<f64>,
    },
    /// Swift with weight-scaled AIMD (the §7 weighted-virtual-priority
    /// building block): bandwidth shares converge to ~weight per flow.
    SwiftWeighted {
        /// Queuing budget added to the base RTT to form the target.
        queuing: Time,
        /// AIMD weight (1.0 = plain Swift).
        weight: f64,
    },
    /// HPCC (requires INT-enabled switches).
    Hpcc,
    /// Blind line-rate sender (no congestion control).
    Blast,
}

impl CcSpec {
    /// Instantiate the transport for one flow. `start` is the flow's start
    /// time (needed for absolute D2TCP deadlines).
    pub fn make(&self, params: &FlowParams, start: Time) -> Box<dyn Transport> {
        let bdp = params.base_bdp();
        match *self {
            CcSpec::Swift { queuing, scaling } => {
                let mut cfg = SwiftConfig::datacenter(params.base_rtt, queuing, params.mtu);
                cfg.target_scaling = scaling;
                cfg.init_cwnd = bdp;
                Box::new(CcTransport::new(
                    SenderBase::new(params.clone()),
                    SwiftCc::new(cfg),
                ))
            }
            CcSpec::PrioPlusSwift { policy } => {
                let pp_cfg = policy.flow_config(params);
                let mut cfg = SwiftConfig::datacenter(
                    params.base_rtt,
                    pp_cfg.d_target - params.base_rtt,
                    params.mtu,
                );
                cfg.target_scaling = false; // PrioPlus disables scaling (§4.1)
                cfg.init_cwnd = pp_cfg.w_ls.max(cfg.min_cwnd);
                Box::new(PrioPlusTransport::new(
                    SenderBase::new(params.clone()),
                    pp_cfg,
                    SwiftCc::new(cfg),
                ))
            }
            CcSpec::Ledbat { queuing } => {
                let mut cfg = LedbatConfig::datacenter(params.base_rtt, queuing, params.mtu);
                cfg.init_cwnd = bdp;
                Box::new(CcTransport::new(
                    SenderBase::new(params.clone()),
                    LedbatCc::new(cfg),
                ))
            }
            CcSpec::PrioPlusLedbat { policy } => {
                let pp_cfg = policy.flow_config(params);
                let mut cfg = LedbatConfig::datacenter(
                    params.base_rtt,
                    pp_cfg.d_target - params.base_rtt,
                    params.mtu,
                );
                cfg.init_cwnd = pp_cfg.w_ls.max(cfg.min_cwnd);
                Box::new(PrioPlusTransport::new(
                    SenderBase::new(params.clone()),
                    pp_cfg,
                    LedbatCc::new(cfg),
                ))
            }
            CcSpec::D2tcp { deadline_factor } => {
                let mut cfg = D2tcpConfig::dctcp(params.mtu, bdp);
                if let Some(f) = deadline_factor {
                    let ideal = params.base_rtt + params.line_rate.serialize_time(params.size);
                    cfg = cfg.with_deadline(start + ideal.mul_f64(f));
                }
                Box::new(DctcpTransport::new(params.clone(), cfg))
            }
            CcSpec::SwiftWeighted { queuing, weight } => {
                let mut cfg = SwiftConfig::datacenter(params.base_rtt, queuing, params.mtu);
                cfg.init_cwnd = bdp;
                Box::new(CcTransport::new(
                    SenderBase::new(params.clone()),
                    prioplus::WeightedCc::new(SwiftCc::new(cfg), weight),
                ))
            }
            CcSpec::Hpcc => {
                let cfg = HpccConfig::new(params.base_rtt, bdp);
                Box::new(HpccTransport::new(params.clone(), cfg))
            }
            CcSpec::Blast => Box::new(BlastTransport::new(params.clone())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::Rate;

    fn params(virt_prio: u8) -> FlowParams {
        FlowParams {
            flow: 0,
            size: 1_000_000,
            line_rate: Rate::from_gbps(100),
            base_rtt: Time::from_us(12),
            base_rtt_probe: Time::from_us(11),
            mtu: 1000,
            virt_prio,
            seed: 3,
        }
    }

    #[test]
    fn policy_tiers_match_section_4_4() {
        let pol = PrioPlusPolicy::paper_default(12);
        // Highest priority: W_LS = 1 BDP, no probe.
        let hi = pol.flow_config(&params(11));
        assert!(!hi.probe_before_start);
        assert_eq!(hi.w_ls, 150_000.0);
        // Middle band: 0.25 BDP, probe.
        let mid = pol.flow_config(&params(8));
        assert!(mid.probe_before_start);
        assert_eq!(mid.w_ls, 37_500.0);
        // Low band (bottom quarter, 0..=2 of 12): 0.125 BDP, probe.
        let lo = pol.flow_config(&params(2));
        assert!(lo.probe_before_start);
        assert_eq!(lo.w_ls, 18_750.0);
        // Disabling probing keeps tiers but starts everyone with linear
        // start (§4.4 latency-sensitive exemption).
        let noprobe = PrioPlusPolicy {
            probe: false,
            ..pol
        };
        assert!(!noprobe.flow_config(&params(8)).probe_before_start);
    }

    #[test]
    fn policy_channels_are_disjoint_and_ordered() {
        let pol = PrioPlusPolicy::paper_default(8);
        let mut prev_limit = Time::ZERO;
        for p in 0..8 {
            let cfg = pol.flow_config(&params(p));
            assert!(cfg.d_target > prev_limit, "prio {p}");
            assert!(cfg.d_limit > cfg.d_target);
            prev_limit = cfg.d_limit;
        }
    }

    #[test]
    fn every_spec_constructs() {
        let pol = PrioPlusPolicy::paper_default(8);
        let specs = [
            CcSpec::Swift {
                queuing: Time::from_us(4),
                scaling: true,
            },
            CcSpec::PrioPlusSwift { policy: pol },
            CcSpec::Ledbat {
                queuing: Time::from_us(4),
            },
            CcSpec::PrioPlusLedbat { policy: pol },
            CcSpec::D2tcp {
                deadline_factor: Some(2.0),
            },
            CcSpec::SwiftWeighted {
                queuing: Time::from_us(4),
                weight: 4.0,
            },
            CcSpec::Hpcc,
            CcSpec::Blast,
        ];
        for spec in specs {
            let t = spec.make(&params(3), Time::ZERO);
            assert!(!t.is_finished());
            assert!(t.cwnd_bytes() > 0.0);
        }
    }

    #[test]
    fn prioplus_swift_target_equals_channel_target() {
        let pol = PrioPlusPolicy::paper_default(8);
        let spec = CcSpec::PrioPlusSwift { policy: pol };
        // Priority 4 -> D_target = 12 + 5*4 = 32us.
        let t = spec.make(&params(4), Time::ZERO);
        // The wrapped Swift's init window must be W_LS (linear start), not
        // a full BDP: 0.25 * 150000 = 37500.
        assert_eq!(t.cwnd_bytes(), 37_500.0);
    }
}
