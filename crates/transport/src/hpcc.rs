//! HPCC — High Precision Congestion Control (Li et al., SIGCOMM '19).
//!
//! HPCC uses per-hop INT telemetry (queue length, cumulative TX bytes,
//! timestamp, link rate) echoed in every ACK to compute each link's
//! *inflight utilization* `U_j = qlen/(B*T) + txRate/B` and drives the
//! window toward `eta` (95 %) utilization of the most-loaded link:
//! multiplicative correction `W = Wc/(U/eta) + W_AI` when over target, and
//! at most `maxStage` additive steps when under. The reference window `Wc`
//! updates once per RTT.
//!
//! The paper compares PrioPlus against HPCC in the flow-scheduling and
//! coflow scenarios (Fig 16, 18).

use netsim::packet::IntHop;
use netsim::{AckEvent, AckKind, FlowParams, Transport, TransportCtx, TrySend};
use simcore::event::ScheduledId;
use simcore::Time;

use crate::sender::{SenderBase, RTO_TOKEN};

/// HPCC parameters (defaults from the paper).
#[derive(Clone, Copy, Debug)]
pub struct HpccConfig {
    /// Target utilization `eta`.
    pub eta: f64,
    /// Maximum consecutive additive-increase stages.
    pub max_stage: u32,
    /// Additive increase per RTT, bytes.
    pub w_ai: f64,
    /// Base RTT `T` used to normalize queue length.
    pub base_rtt: Time,
    /// Initial (and maximum) window, bytes: one BDP.
    pub init_cwnd: f64,
    /// Minimum window, bytes.
    pub min_cwnd: f64,
}

impl HpccConfig {
    /// Defaults for a given environment.
    pub fn new(base_rtt: Time, bdp_bytes: f64) -> Self {
        HpccConfig {
            eta: 0.95,
            max_stage: 5,
            w_ai: bdp_bytes * 0.01, // small AI for near-zero standing queue
            base_rtt,
            init_cwnd: bdp_bytes,
            min_cwnd: 64.0,
        }
    }
}

#[derive(Clone, Copy, Debug, Default)]
struct LinkSnapshot {
    qlen: u64,
    tx_bytes: u64,
    ts: Time,
    valid: bool,
}

/// HPCC transport.
#[derive(Clone, Debug)]
pub struct HpccTransport {
    base: SenderBase,
    cfg: HpccConfig,
    cwnd: f64,
    /// Reference window, updated once per RTT.
    wc: f64,
    /// Last-seen INT state per hop.
    links: Vec<LinkSnapshot>,
    /// Smoothed inflight utilization estimate.
    u: f64,
    inc_stage: u32,
    /// Sequence marking the per-RTT `Wc` update boundary.
    wc_seq: u64,
    rto_timer: Option<ScheduledId>,
}

impl HpccTransport {
    /// New transport.
    pub fn new(params: FlowParams, cfg: HpccConfig) -> Self {
        HpccTransport {
            base: SenderBase::new(params),
            cwnd: cfg.init_cwnd,
            wc: cfg.init_cwnd,
            links: Vec::new(),
            u: 0.0,
            inc_stage: 0,
            wc_seq: 0,
            rto_timer: None,
            cfg,
        }
    }

    /// Current utilization estimate (diagnostics).
    pub fn utilization(&self) -> f64 {
        self.u
    }

    /// Compute the max per-link inflight utilization from fresh INT, update
    /// the EWMA, and return it. Public for unit testing.
    pub fn measure_inflight(&mut self, int: &[IntHop]) -> f64 {
        if self.links.len() < int.len() {
            self.links.resize(int.len(), LinkSnapshot::default());
        }
        let t_ps = self.cfg.base_rtt.as_ps() as f64;
        let mut u_max: f64 = 0.0;
        let mut tau_ps = t_ps;
        for (i, hop) in int.iter().enumerate() {
            let prev = self.links[i];
            if prev.valid && hop.ts > prev.ts {
                let dt = (hop.ts - prev.ts).as_ps() as f64;
                let tx_rate_bytes_per_ps = hop.tx_bytes.saturating_sub(prev.tx_bytes) as f64 / dt;
                let line_bytes_per_ps = hop.rate_bps as f64 / 8.0 / 1e12;
                let bdp = line_bytes_per_ps * t_ps;
                let u =
                    hop.qlen.min(prev.qlen) as f64 / bdp + tx_rate_bytes_per_ps / line_bytes_per_ps;
                if u > u_max {
                    u_max = u;
                    tau_ps = dt;
                }
            }
            self.links[i] = LinkSnapshot {
                qlen: hop.qlen,
                tx_bytes: hop.tx_bytes,
                ts: hop.ts,
                valid: true,
            };
        }
        if u_max > 0.0 {
            let tau = tau_ps.min(t_ps);
            self.u = (1.0 - tau / t_ps) * self.u + (tau / t_ps) * u_max;
        }
        self.u
    }

    fn compute_wind(&mut self, update_wc: bool) {
        if self.u >= self.cfg.eta || self.inc_stage >= self.cfg.max_stage {
            let w = self.wc / (self.u / self.cfg.eta).max(1e-3) + self.cfg.w_ai;
            self.cwnd = w.clamp(self.cfg.min_cwnd, self.cfg.init_cwnd);
            if update_wc {
                self.inc_stage = 0;
                self.wc = self.cwnd;
            }
        } else {
            let w = self.wc + self.cfg.w_ai;
            self.cwnd = w.clamp(self.cfg.min_cwnd, self.cfg.init_cwnd);
            if update_wc {
                self.inc_stage += 1;
                self.wc = self.cwnd;
            }
        }
    }

    fn arm_rto(&mut self, ctx: &mut TransportCtx<'_>) {
        if let Some(id) = self.rto_timer.take() {
            ctx.cancel_timer(id);
        }
        let at = ctx.now + self.base.rto();
        self.rto_timer = Some(ctx.schedule_timer(at, RTO_TOKEN));
    }
}

impl Transport for HpccTransport {
    fn clone_box(&self) -> Box<dyn Transport> {
        Box::new(self.clone())
    }

    fn on_start(&mut self, ctx: &mut TransportCtx<'_>) {
        self.arm_rto(ctx);
    }

    fn on_ack(&mut self, ack: &AckEvent, ctx: &mut TransportCtx<'_>) {
        if ack.kind != AckKind::Data {
            return;
        }
        let _newly = self.base.on_ack(ack, ctx.now);
        if let Some(int) = &ack.int {
            self.measure_inflight(int.as_slice());
            let update_wc = ack.acked_seq >= self.wc_seq;
            if update_wc {
                self.wc_seq = self.base.snd_nxt;
            }
            self.compute_wind(update_wc);
        }
        ctx.trace_delay(ack.delay);
        ctx.trace_cwnd(self.cwnd);
        if !self.base.finished() {
            self.arm_rto(ctx);
        } else if let Some(id) = self.rto_timer.take() {
            ctx.cancel_timer(id);
        }
    }

    fn on_timer(&mut self, token: u64, ctx: &mut TransportCtx<'_>) {
        if token != RTO_TOKEN || self.base.finished() {
            return;
        }
        if ctx.now.saturating_sub(self.base.last_ack) >= self.base.rto()
            && !self.base.outstanding.is_empty()
        {
            self.base.rto_recover();
            self.cwnd = self.cfg.min_cwnd;
        }
        self.arm_rto(ctx);
    }

    fn try_send(&mut self, now: Time) -> TrySend {
        self.base.try_send(self.cwnd, now)
    }

    fn on_sent(&mut self, sent: TrySend, ctx: &mut TransportCtx<'_>) {
        self.base.on_sent(sent, self.cwnd, ctx.now);
    }

    fn is_finished(&self) -> bool {
        self.base.finished()
    }

    fn cwnd_bytes(&self) -> f64 {
        self.cwnd
    }

    fn retransmits(&self) -> u64 {
        self.base.retransmits
    }

    fn check_invariants(&self) -> Result<(), String> {
        self.base.check_invariants()?;
        if !self.cwnd.is_finite() {
            return Err(format!("hpcc cwnd {} is not finite", self.cwnd));
        }
        if self.cwnd < self.cfg.min_cwnd || self.cwnd > self.cfg.init_cwnd {
            return Err(format!(
                "hpcc cwnd {} outside [{}, {}]",
                self.cwnd, self.cfg.min_cwnd, self.cfg.init_cwnd
            ));
        }
        if !self.u.is_finite() || self.u < 0.0 {
            return Err(format!("hpcc utilization estimate {} invalid", self.u));
        }
        if self.inc_stage > self.cfg.max_stage {
            return Err(format!(
                "hpcc inc_stage {} exceeds max_stage {}",
                self.inc_stage, self.cfg.max_stage
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::Rate;

    fn params() -> FlowParams {
        FlowParams {
            flow: 0,
            size: 10_000_000,
            line_rate: Rate::from_gbps(100),
            base_rtt: Time::from_us(12),
            base_rtt_probe: Time::from_us(11),
            mtu: 1000,
            virt_prio: 0,
            seed: 1,
        }
    }

    fn hop(qlen: u64, tx: u64, ts_us: u64) -> IntHop {
        IntHop {
            qlen,
            tx_bytes: tx,
            ts: Time::from_us(ts_us),
            rate_bps: 100_000_000_000,
        }
    }

    fn mk() -> HpccTransport {
        let p = params();
        let bdp = p.line_rate.bdp_bytes(p.base_rtt) as f64;
        HpccTransport::new(p.clone(), HpccConfig::new(p.base_rtt, bdp))
    }

    #[test]
    fn utilization_from_full_link_is_near_one() {
        let mut t = mk();
        // 12us between samples, link fully busy: tx delta = 150 KB (1 BDP),
        // no queue.
        t.measure_inflight(&[hop(0, 0, 0)]);
        let u = t.measure_inflight(&[hop(0, 150_000, 12)]);
        assert!((u - 1.0).abs() < 0.05, "u {u}");
    }

    #[test]
    fn queue_adds_to_utilization() {
        let mut t = mk();
        t.measure_inflight(&[hop(75_000, 0, 0)]);
        let u = t.measure_inflight(&[hop(75_000, 150_000, 12)]);
        // 0.5 BDP of queue + 1.0 of rate ~= 1.5.
        assert!(u > 1.2, "u {u}");
    }

    #[test]
    fn over_utilization_shrinks_window() {
        let mut t = mk();
        t.u = 2.0;
        let w0 = t.cwnd;
        t.compute_wind(true);
        assert!(t.cwnd < w0 * 0.6, "cwnd {}", t.cwnd);
    }

    #[test]
    fn under_utilization_grows_additively_up_to_max_stage() {
        let mut t = mk();
        t.u = 0.3;
        let w0 = t.cwnd;
        // cwnd is clamped at init (1 BDP); drop wc to see the growth.
        t.wc = w0 / 2.0;
        for _ in 0..t.cfg.max_stage {
            t.compute_wind(true);
        }
        assert!((t.cwnd - (w0 / 2.0 + 5.0 * t.cfg.w_ai)).abs() < 1.0);
        // Stage 6 switches to the multiplicative branch.
        let w5 = t.cwnd;
        t.compute_wind(true);
        assert!(t.cwnd > w5, "MI branch with U<eta grows: {}", t.cwnd);
    }

    #[test]
    fn idle_links_give_high_window() {
        let mut t = mk();
        t.measure_inflight(&[hop(0, 0, 0)]);
        t.measure_inflight(&[hop(0, 1_000, 12)]); // ~0.7% utilization
        t.compute_wind(true);
        assert!(t.cwnd >= t.wc - 1.0);
    }

    #[test]
    fn worst_hop_dominates() {
        let mut t = mk();
        t.measure_inflight(&[hop(0, 0, 0), hop(0, 0, 0)]);
        let u = t.measure_inflight(&[hop(0, 10_000, 12), hop(140_000, 150_000, 12)]);
        assert!(u > 0.9, "the congested second hop must dominate: {u}");
    }
}
