//! LEDBAT-style delay-based congestion control (Rossi et al., ICCCN '10 /
//! RFC 6817), adapted to the datacenter setting as the paper's second
//! integration target for PrioPlus (§4.1, §6.2).
//!
//! LEDBAT steers the *queuing* delay toward a fixed target with a
//! proportional controller: `cwnd += GAIN * off_target * bytes_acked /
//! cwnd`, where `off_target = (TARGET - queuing) / TARGET`. Unlike Swift,
//! the decrease is proportional rather than multiplicative, which makes it
//! a useful second data point for PrioPlus integration.

use prioplus::DelayCc;
use simcore::Time;

/// LEDBAT parameters.
#[derive(Clone, Copy, Debug)]
pub struct LedbatConfig {
    /// Base (no-queue) RTT used to convert delay to queuing delay.
    pub base_rtt: Time,
    /// Queuing-delay target.
    pub target_queuing: Time,
    /// Controller gain.
    pub gain: f64,
    /// Additive "allowed increase" cap per RTT, bytes.
    pub ai: f64,
    /// Minimum window, bytes.
    pub min_cwnd: f64,
    /// Maximum window, bytes.
    pub max_cwnd: f64,
    /// Initial window, bytes.
    pub init_cwnd: f64,
    /// MTU in bytes.
    pub mtu: u32,
}

impl LedbatConfig {
    /// Datacenter defaults mirroring the Swift environment.
    pub fn datacenter(base_rtt: Time, target_queuing: Time, mtu: u32) -> Self {
        let min_cwnd = (100e6 / 8.0 * base_rtt.as_secs_f64()).max(64.0);
        LedbatConfig {
            base_rtt,
            target_queuing,
            gain: 1.0,
            ai: mtu as f64,
            min_cwnd,
            max_cwnd: 10_000_000.0,
            init_cwnd: 0.0,
            mtu,
        }
    }
}

/// LEDBAT window state; implements [`DelayCc`] for PrioPlus integration.
#[derive(Clone, Debug)]
pub struct LedbatCc {
    cfg: LedbatConfig,
    cwnd: f64,
    ai: f64,
}

impl LedbatCc {
    /// New controller.
    pub fn new(cfg: LedbatConfig) -> Self {
        assert!(cfg.init_cwnd > 0.0, "init_cwnd must be set");
        LedbatCc {
            cwnd: cfg.init_cwnd.clamp(cfg.min_cwnd, cfg.max_cwnd),
            ai: cfg.ai,
            cfg,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &LedbatConfig {
        &self.cfg
    }
}

impl DelayCc for LedbatCc {
    fn on_ack(&mut self, delay: Time, acked_bytes: u32, _now: Time) {
        let queuing = delay.saturating_sub(self.cfg.base_rtt);
        let target = self.cfg.target_queuing.as_ps() as f64;
        let off = (target - queuing.as_ps() as f64) / target;
        // Proportional controller; positive off grows, negative shrinks.
        // The per-ACK step is capped at the allowed increase (ai per RTT).
        let step =
            self.cfg.gain * off * self.ai * acked_bytes as f64 / self.cwnd.max(self.cfg.mtu as f64);
        let max_step = self.ai * acked_bytes as f64 / self.cwnd.max(self.cfg.mtu as f64);
        self.cwnd += step.clamp(-8.0 * max_step, max_step);
        self.cwnd = self.cwnd.clamp(self.cfg.min_cwnd, self.cfg.max_cwnd);
    }

    fn cwnd(&self) -> f64 {
        self.cwnd
    }

    fn set_cwnd(&mut self, bytes: f64) {
        self.cwnd = bytes.clamp(self.cfg.min_cwnd, self.cfg.max_cwnd);
    }

    fn ai(&self) -> f64 {
        self.ai
    }

    fn set_ai(&mut self, bytes_per_rtt: f64) {
        self.ai = bytes_per_rtt.max(0.0);
    }

    fn ai_origin(&self) -> f64 {
        self.cfg.ai
    }

    fn target_delay(&self) -> Time {
        self.cfg.base_rtt + self.cfg.target_queuing
    }

    fn check_invariants(&self) -> Result<(), String> {
        if !self.cwnd.is_finite() {
            return Err(format!("ledbat cwnd {} is not finite", self.cwnd));
        }
        if self.cwnd < self.cfg.min_cwnd || self.cwnd > self.cfg.max_cwnd {
            return Err(format!(
                "ledbat cwnd {} outside [{}, {}]",
                self.cwnd, self.cfg.min_cwnd, self.cfg.max_cwnd
            ));
        }
        if !self.ai.is_finite() || self.ai < 0.0 {
            return Err(format!("ledbat ai step {} invalid", self.ai));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cc() -> LedbatCc {
        let mut cfg = LedbatConfig::datacenter(Time::from_us(12), Time::from_us(4), 1000);
        cfg.init_cwnd = 50_000.0;
        LedbatCc::new(cfg)
    }

    #[test]
    fn grows_below_target() {
        let mut c = cc();
        let w0 = c.cwnd();
        c.on_ack(Time::from_us(12), 1000, Time::ZERO); // zero queuing
        assert!(c.cwnd() > w0);
    }

    #[test]
    fn shrinks_above_target() {
        let mut c = cc();
        let w0 = c.cwnd();
        c.on_ack(Time::from_us(30), 1000, Time::ZERO); // 18us queuing >> 4us
        assert!(c.cwnd() < w0);
    }

    #[test]
    fn neutral_at_target() {
        let mut c = cc();
        let w0 = c.cwnd();
        c.on_ack(Time::from_us(16), 1000, Time::ZERO); // queuing == target
        assert!((c.cwnd() - w0).abs() < 1.0);
    }

    #[test]
    fn proportional_response_scales_with_offset() {
        let mut a = cc();
        let mut b = cc();
        a.on_ack(Time::from_us(14), 1000, Time::ZERO); // off = +0.5
        b.on_ack(Time::from_us(12), 1000, Time::ZERO); // off = +1.0
        let ga = a.cwnd() - 50_000.0;
        let gb = b.cwnd() - 50_000.0;
        assert!((gb / ga - 2.0).abs() < 0.05, "ratio {}", gb / ga);
    }

    #[test]
    fn window_stays_in_bounds() {
        let mut c = cc();
        for _ in 0..10_000 {
            c.on_ack(Time::from_ms(1), 1000, Time::ZERO);
        }
        assert!(c.cwnd() >= c.config().min_cwnd);
        for _ in 0..1_000_000 {
            c.on_ack(Time::from_us(12), 1000, Time::ZERO);
        }
        assert!(c.cwnd() <= c.config().max_cwnd);
    }
}
