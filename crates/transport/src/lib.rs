//! Congestion-control transports for the PrioPlus reproduction.
//!
//! Every transport implements [`netsim::Transport`] on top of a shared
//! sender base ([`sender::SenderBase`]: sequencing, windows, pacing, RTO,
//! selective retransmission). The delay-based CCs (Swift, LEDBAT) also
//! implement [`prioplus::DelayCc`], which lets [`PrioPlusTransport`] wrap
//! them with the PrioPlus virtual-priority enhancement — the Rust analogue
//! of the paper's 79-line DPDK integration.
//!
//! Provided algorithms:
//!
//! | Type | Paper role |
//! |---|---|
//! | [`SwiftCc`] / plain transport | state-of-the-art delay CC, main baseline |
//! | [`PrioPlusTransport`]`<SwiftCc>` | **PrioPlus+Swift**, the paper's system |
//! | [`LedbatCc`] | second delay CC PrioPlus integrates with (§6.2) |
//! | [`DctcpTransport`] (with deadline) | D2TCP motivation baseline (§3.1) |
//! | [`HpccTransport`] | INT-based CC comparison (Fig 16, 18) |
//! | [`BlastTransport`] | "Physical* w/o CC" blind line-rate sender |

#![forbid(unsafe_code)]

#![warn(missing_docs)]

pub mod dctcp;
pub mod factory;
pub mod hpcc;
pub mod ledbat;
pub mod nocc;
pub mod plain;
pub mod pp_transport;
pub mod sender;
pub mod swift;

pub use dctcp::{D2tcpConfig, DctcpTransport};
pub use factory::{CcSpec, PrioPlusPolicy};
pub use hpcc::{HpccConfig, HpccTransport};
pub use ledbat::{LedbatCc, LedbatConfig};
pub use nocc::BlastTransport;
pub use plain::CcTransport;
pub use pp_transport::PrioPlusTransport;
pub use swift::{SwiftCc, SwiftConfig};
