//! The "no congestion control" sender: blind line-rate injection, used for
//! the paper's "Physical* w/o CC" baseline (Fig 11, 14, 18). The window is
//! effectively unbounded, so the NIC drains at line rate and the network's
//! own mechanisms (PFC or drops) are the only backpressure.

use netsim::{AckEvent, AckKind, FlowParams, Transport, TransportCtx, TrySend};
use simcore::event::ScheduledId;
use simcore::Time;

use crate::sender::{SenderBase, RTO_TOKEN};

/// Blind line-rate transport.
#[derive(Clone, Debug)]
pub struct BlastTransport {
    base: SenderBase,
    rto_timer: Option<ScheduledId>,
}

/// Effectively-infinite window (bounded to keep arithmetic sane).
const BLAST_WINDOW: f64 = 1e15;

impl BlastTransport {
    /// New transport.
    pub fn new(params: FlowParams) -> Self {
        BlastTransport {
            base: SenderBase::new(params),
            rto_timer: None,
        }
    }

    fn arm_rto(&mut self, ctx: &mut TransportCtx<'_>) {
        if let Some(id) = self.rto_timer.take() {
            ctx.cancel_timer(id);
        }
        let at = ctx.now + self.base.rto();
        self.rto_timer = Some(ctx.schedule_timer(at, RTO_TOKEN));
    }
}

impl Transport for BlastTransport {
    fn clone_box(&self) -> Box<dyn Transport> {
        Box::new(self.clone())
    }

    fn on_start(&mut self, ctx: &mut TransportCtx<'_>) {
        self.arm_rto(ctx);
    }

    fn on_ack(&mut self, ack: &AckEvent, ctx: &mut TransportCtx<'_>) {
        if ack.kind != AckKind::Data {
            return;
        }
        self.base.on_ack(ack, ctx.now);
        ctx.trace_delay(ack.delay);
        if !self.base.finished() {
            self.arm_rto(ctx);
        } else if let Some(id) = self.rto_timer.take() {
            ctx.cancel_timer(id);
        }
    }

    fn on_timer(&mut self, token: u64, ctx: &mut TransportCtx<'_>) {
        if token != RTO_TOKEN || self.base.finished() {
            return;
        }
        if ctx.now.saturating_sub(self.base.last_ack) >= self.base.rto()
            && !self.base.outstanding.is_empty()
        {
            self.base.rto_recover();
        }
        self.arm_rto(ctx);
    }

    fn try_send(&mut self, now: Time) -> TrySend {
        self.base.try_send(BLAST_WINDOW, now)
    }

    fn on_sent(&mut self, sent: TrySend, ctx: &mut TransportCtx<'_>) {
        self.base.on_sent(sent, BLAST_WINDOW, ctx.now);
    }

    fn is_finished(&self) -> bool {
        self.base.finished()
    }

    fn cwnd_bytes(&self) -> f64 {
        BLAST_WINDOW
    }

    fn retransmits(&self) -> u64 {
        self.base.retransmits
    }

    fn check_invariants(&self) -> Result<(), String> {
        self.base.check_invariants()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::Event;
    use simcore::{EventQueue, Rate};

    fn params(size: u64) -> FlowParams {
        FlowParams {
            flow: 0,
            size,
            line_rate: Rate::from_gbps(100),
            base_rtt: Time::from_us(12),
            base_rtt_probe: Time::from_us(11),
            mtu: 1000,
            virt_prio: 0,
            seed: 1,
        }
    }

    fn ack(seq: u64, bytes: u32) -> AckEvent {
        AckEvent {
            kind: AckKind::Data,
            delay: Time::from_us(14),
            cum_bytes: seq + bytes as u64,
            acked_seq: seq,
            acked_bytes: bytes,
            ecn_echo: false,
            nack: None,
            int: None,
        }
    }

    #[test]
    fn window_never_gates_new_data() {
        // The blast sender must be able to put the entire flow in flight
        // without a single ACK: only "everything sent" blocks it.
        let mut t = BlastTransport::new(params(10_000));
        assert!(t.cwnd_bytes() >= 1e12);
        for i in 0..10u64 {
            let d = t.try_send(Time::ZERO);
            assert!(
                matches!(d, TrySend::Data { seq, bytes: 1000 } if seq == i * 1000),
                "send {i}: {d:?}"
            );
            let mut q = EventQueue::<Event>::new();
            let mut ctx = TransportCtx::for_test(&mut q, Time::ZERO, 0);
            t.on_sent(d, &mut ctx);
        }
        assert_eq!(t.try_send(Time::ZERO), TrySend::Blocked);
        assert_eq!(t.base.inflight, 10_000);
        t.check_invariants().unwrap();
    }

    #[test]
    fn probe_acks_are_ignored() {
        let mut t = BlastTransport::new(params(5_000));
        let mut q = EventQueue::<Event>::new();
        let mut ctx = TransportCtx::for_test(&mut q, Time::from_us(1), 0);
        let mut a = ack(0, 1000);
        a.kind = AckKind::Probe;
        let before = t.base.acked;
        t.on_ack(&a, &mut ctx);
        assert_eq!(t.base.acked, before);
    }

    #[test]
    fn finishes_and_cancels_rto() {
        let mut t = BlastTransport::new(params(3_000));
        let mut q = EventQueue::<Event>::new();
        {
            let mut ctx = TransportCtx::for_test(&mut q, Time::ZERO, 0);
            t.on_start(&mut ctx);
        }
        assert_eq!(q.len(), 1, "on_start arms the RTO");
        for i in 0..3u64 {
            let d = t.try_send(Time::ZERO);
            let mut ctx = TransportCtx::for_test(&mut q, Time::ZERO, 0);
            t.on_sent(d, &mut ctx);
            let _ = i;
        }
        for i in 0..3u64 {
            let mut ctx = TransportCtx::for_test(&mut q, Time::from_us(14 + i), 0);
            t.on_ack(&ack(i * 1000, 1000), &mut ctx);
        }
        assert!(t.is_finished());
        assert_eq!(q.len(), 0, "final ACK cancels the RTO");
        t.check_invariants().unwrap();
    }

    #[test]
    fn rto_requeues_outstanding_and_retransmits() {
        let mut t = BlastTransport::new(params(2_000));
        let mut q = EventQueue::<Event>::new();
        for _ in 0..2 {
            let d = t.try_send(Time::ZERO);
            let mut ctx = TransportCtx::for_test(&mut q, Time::ZERO, 0);
            t.on_sent(d, &mut ctx);
        }
        // No ACKs by the time the (backed-off) RTO fires.
        let late = Time::from_ms(10);
        let mut ctx = TransportCtx::for_test(&mut q, late, 0);
        t.on_timer(RTO_TOKEN, &mut ctx);
        let d = t.try_send(late);
        assert!(matches!(d, TrySend::Data { seq: 0, bytes: 1000 }), "{d:?}");
        let mut ctx = TransportCtx::for_test(&mut q, late, 0);
        t.on_sent(d, &mut ctx);
        assert_eq!(t.retransmits(), 1);
        t.check_invariants().unwrap();
    }
}
