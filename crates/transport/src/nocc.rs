//! The "no congestion control" sender: blind line-rate injection, used for
//! the paper's "Physical* w/o CC" baseline (Fig 11, 14, 18). The window is
//! effectively unbounded, so the NIC drains at line rate and the network's
//! own mechanisms (PFC or drops) are the only backpressure.

use netsim::{AckEvent, AckKind, FlowParams, Transport, TransportCtx, TrySend};
use simcore::event::ScheduledId;
use simcore::Time;

use crate::sender::{SenderBase, RTO_TOKEN};

/// Blind line-rate transport.
pub struct BlastTransport {
    base: SenderBase,
    rto_timer: Option<ScheduledId>,
}

/// Effectively-infinite window (bounded to keep arithmetic sane).
const BLAST_WINDOW: f64 = 1e15;

impl BlastTransport {
    /// New transport.
    pub fn new(params: FlowParams) -> Self {
        BlastTransport {
            base: SenderBase::new(params),
            rto_timer: None,
        }
    }

    fn arm_rto(&mut self, ctx: &mut TransportCtx<'_>) {
        if let Some(id) = self.rto_timer.take() {
            ctx.cancel_timer(id);
        }
        let at = ctx.now + self.base.rto();
        self.rto_timer = Some(ctx.schedule_timer(at, RTO_TOKEN));
    }
}

impl Transport for BlastTransport {
    fn on_start(&mut self, ctx: &mut TransportCtx<'_>) {
        self.arm_rto(ctx);
    }

    fn on_ack(&mut self, ack: &AckEvent, ctx: &mut TransportCtx<'_>) {
        if ack.kind != AckKind::Data {
            return;
        }
        self.base.on_ack(ack, ctx.now);
        ctx.trace_delay(ack.delay);
        if !self.base.finished() {
            self.arm_rto(ctx);
        } else if let Some(id) = self.rto_timer.take() {
            ctx.cancel_timer(id);
        }
    }

    fn on_timer(&mut self, token: u64, ctx: &mut TransportCtx<'_>) {
        if token != RTO_TOKEN || self.base.finished() {
            return;
        }
        if ctx.now.saturating_sub(self.base.last_ack) >= self.base.rto()
            && !self.base.outstanding.is_empty()
        {
            self.base.rto_recover();
        }
        self.arm_rto(ctx);
    }

    fn try_send(&mut self, now: Time) -> TrySend {
        self.base.try_send(BLAST_WINDOW, now)
    }

    fn on_sent(&mut self, sent: TrySend, ctx: &mut TransportCtx<'_>) {
        self.base.on_sent(sent, BLAST_WINDOW, ctx.now);
    }

    fn is_finished(&self) -> bool {
        self.base.finished()
    }

    fn cwnd_bytes(&self) -> f64 {
        BLAST_WINDOW
    }

    fn retransmits(&self) -> u64 {
        self.base.retransmits
    }
}
