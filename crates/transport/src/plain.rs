//! A plain (non-PrioPlus) transport around any [`DelayCc`]: what "Swift
//! with physical priority" runs in the paper's comparisons.

use netsim::{AckEvent, AckKind, Transport, TransportCtx, TrySend};
use prioplus::DelayCc;
use simcore::event::ScheduledId;
use simcore::Time;

use crate::sender::{SenderBase, RTO_TOKEN};

/// Window-based transport delegating congestion control to a [`DelayCc`].
#[derive(Clone, Debug)]
pub struct CcTransport<C: DelayCc> {
    base: SenderBase,
    cc: C,
    rto_timer: Option<ScheduledId>,
}

impl<C: DelayCc> CcTransport<C> {
    /// New transport for the flow described by `base`'s parameters.
    pub fn new(base: SenderBase, cc: C) -> Self {
        CcTransport {
            base,
            cc,
            rto_timer: None,
        }
    }

    /// Borrow the CC (diagnostics).
    pub fn cc(&self) -> &C {
        &self.cc
    }

    /// Borrow the sender base (diagnostics).
    pub fn base(&self) -> &SenderBase {
        &self.base
    }

    fn arm_rto(&mut self, ctx: &mut TransportCtx<'_>) {
        if let Some(id) = self.rto_timer.take() {
            ctx.cancel_timer(id);
        }
        let at = ctx.now + self.base.rto();
        self.rto_timer = Some(ctx.schedule_timer(at, RTO_TOKEN));
    }
}

impl<C: DelayCc + Clone + Send + Sync + 'static> Transport for CcTransport<C> {
    fn clone_box(&self) -> Box<dyn Transport> {
        Box::new(self.clone())
    }

    fn on_start(&mut self, ctx: &mut TransportCtx<'_>) {
        self.arm_rto(ctx);
    }

    fn on_ack(&mut self, ack: &AckEvent, ctx: &mut TransportCtx<'_>) {
        if ack.kind != AckKind::Data {
            return;
        }
        let newly = self.base.on_ack(ack, ctx.now);
        self.cc
            .on_ack(ack.delay, newly.max(ack.acked_bytes), ctx.now);
        ctx.trace_delay(ack.delay);
        ctx.trace_cwnd(self.cc.cwnd());
        if !self.base.finished() {
            self.arm_rto(ctx);
        } else if let Some(id) = self.rto_timer.take() {
            ctx.cancel_timer(id);
        }
    }

    fn on_timer(&mut self, token: u64, ctx: &mut TransportCtx<'_>) {
        if token != RTO_TOKEN || self.base.finished() {
            return;
        }
        if ctx.now.saturating_sub(self.base.last_ack) >= self.base.rto()
            && !self.base.outstanding.is_empty()
        {
            self.base.rto_recover();
        }
        self.arm_rto(ctx);
    }

    fn try_send(&mut self, now: Time) -> TrySend {
        self.base.try_send(self.cc.cwnd(), now)
    }

    fn on_sent(&mut self, sent: TrySend, ctx: &mut TransportCtx<'_>) {
        self.base.on_sent(sent, self.cc.cwnd(), ctx.now);
    }

    fn is_finished(&self) -> bool {
        self.base.finished()
    }

    fn cwnd_bytes(&self) -> f64 {
        self.cc.cwnd()
    }

    fn retransmits(&self) -> u64 {
        self.base.retransmits
    }

    fn check_invariants(&self) -> Result<(), String> {
        self.base.check_invariants()?;
        self.cc.check_invariants()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sender::SenderBase;
    use netsim::Event;
    use netsim::{AckKind, FlowParams};
    use prioplus::cc::SimpleAimd;
    use simcore::{EventQueue, Rate};

    fn params(size: u64) -> FlowParams {
        FlowParams {
            flow: 0,
            size,
            line_rate: Rate::from_gbps(100),
            base_rtt: Time::from_us(12),
            base_rtt_probe: Time::from_us(11),
            mtu: 1000,
            virt_prio: 0,
            seed: 1,
        }
    }

    fn ack(seq: u64, bytes: u32, delay_us: u64) -> AckEvent {
        AckEvent {
            kind: AckKind::Data,
            delay: Time::from_us(delay_us),
            cum_bytes: seq + bytes as u64,
            acked_seq: seq,
            acked_bytes: bytes,
            ecn_echo: false,
            nack: None,
            int: None,
        }
    }

    fn mk(size: u64, init_cwnd: f64) -> CcTransport<SimpleAimd> {
        let cc = SimpleAimd::new(Time::from_us(16), 1000.0, init_cwnd, 1e9);
        CcTransport::new(SenderBase::new(params(size)), cc)
    }

    #[test]
    fn cc_window_gates_sends() {
        let mut t = mk(10_000, 2_000.0);
        let mut q = EventQueue::<Event>::new();
        for _ in 0..2 {
            let d = t.try_send(Time::ZERO);
            assert!(matches!(d, TrySend::Data { .. }), "{d:?}");
            let mut ctx = TransportCtx::for_test(&mut q, Time::ZERO, 0);
            t.on_sent(d, &mut ctx);
        }
        assert_eq!(t.try_send(Time::ZERO), TrySend::Blocked);
    }

    #[test]
    fn below_target_ack_grows_window() {
        let mut t = mk(1_000_000, 10_000.0);
        let mut q = EventQueue::<Event>::new();
        let d = t.try_send(Time::ZERO);
        let mut ctx = TransportCtx::for_test(&mut q, Time::ZERO, 0);
        t.on_sent(d, &mut ctx);
        let w0 = t.cwnd_bytes();
        let mut ctx = TransportCtx::for_test(&mut q, Time::from_us(12), 0);
        t.on_ack(&ack(0, 1000, 12), &mut ctx);
        assert!(t.cwnd_bytes() > w0);
        t.check_invariants().unwrap();
    }

    #[test]
    fn window_collapse_stops_at_cc_floor_and_still_paces() {
        // Persistent congestion drives the window to the CC's floor (64 B),
        // but the flow must keep a minimum sending rate: one paced sub-MTU
        // packet at a time, never a permanent Blocked.
        let mut t = mk(1_000_000, 10_000.0);
        let mut q = EventQueue::<Event>::new();
        let mut now = Time::ZERO;
        for _ in 0..100 {
            now += Time::from_ms(1);
            let d = t.try_send(now);
            if let TrySend::Data { seq: s, bytes } = d {
                let mut ctx = TransportCtx::for_test(&mut q, now, 0);
                t.on_sent(d, &mut ctx);
                // Huge delay: way above the 16us target.
                let mut ctx = TransportCtx::for_test(&mut q, now, 0);
                t.on_ack(&ack(s, bytes, 500), &mut ctx);
            }
        }
        assert_eq!(t.cwnd_bytes(), 64.0, "AIMD floor");
        t.check_invariants().unwrap();
        // At the floor (< MTU) with nothing in flight the sender is paced,
        // not dead: it either sends now or names a concrete next time.
        match t.try_send(now + Time::from_ms(100)) {
            TrySend::Data { .. } | TrySend::NotBefore(_) => {}
            other => panic!("floor window must still pace packets, got {other:?}"),
        }
    }

    #[test]
    fn window_growth_is_capped_at_max_cwnd() {
        let cc = SimpleAimd::new(Time::from_us(16), 1_000_000.0, 90_000.0, 100_000.0);
        let mut t = CcTransport::new(SenderBase::new(params(100_000_000)), cc);
        let mut q = EventQueue::<Event>::new();
        for i in 0..100u64 {
            let mut ctx = TransportCtx::for_test(&mut q, Time::from_us(12 + i), 0);
            // Acks for a packet we never sent just exercise the CC path.
            t.on_ack(&ack(0, 1000, 12), &mut ctx);
        }
        assert_eq!(t.cwnd_bytes(), 100_000.0);
        t.check_invariants().unwrap();
    }
}
