//! A plain (non-PrioPlus) transport around any [`DelayCc`]: what "Swift
//! with physical priority" runs in the paper's comparisons.

use netsim::{AckEvent, AckKind, Transport, TransportCtx, TrySend};
use prioplus::DelayCc;
use simcore::event::ScheduledId;
use simcore::Time;

use crate::sender::{SenderBase, RTO_TOKEN};

/// Window-based transport delegating congestion control to a [`DelayCc`].
pub struct CcTransport<C: DelayCc> {
    base: SenderBase,
    cc: C,
    rto_timer: Option<ScheduledId>,
}

impl<C: DelayCc> CcTransport<C> {
    /// New transport for the flow described by `base`'s parameters.
    pub fn new(base: SenderBase, cc: C) -> Self {
        CcTransport {
            base,
            cc,
            rto_timer: None,
        }
    }

    /// Borrow the CC (diagnostics).
    pub fn cc(&self) -> &C {
        &self.cc
    }

    /// Borrow the sender base (diagnostics).
    pub fn base(&self) -> &SenderBase {
        &self.base
    }

    fn arm_rto(&mut self, ctx: &mut TransportCtx<'_>) {
        if let Some(id) = self.rto_timer.take() {
            ctx.cancel_timer(id);
        }
        let at = ctx.now + self.base.rto();
        self.rto_timer = Some(ctx.schedule_timer(at, RTO_TOKEN));
    }
}

impl<C: DelayCc> Transport for CcTransport<C> {
    fn on_start(&mut self, ctx: &mut TransportCtx<'_>) {
        self.arm_rto(ctx);
    }

    fn on_ack(&mut self, ack: &AckEvent, ctx: &mut TransportCtx<'_>) {
        if ack.kind != AckKind::Data {
            return;
        }
        let newly = self.base.on_ack(ack, ctx.now);
        self.cc
            .on_ack(ack.delay, newly.max(ack.acked_bytes), ctx.now);
        ctx.trace_delay(ack.delay);
        ctx.trace_cwnd(self.cc.cwnd());
        if !self.base.finished() {
            self.arm_rto(ctx);
        } else if let Some(id) = self.rto_timer.take() {
            ctx.cancel_timer(id);
        }
    }

    fn on_timer(&mut self, token: u64, ctx: &mut TransportCtx<'_>) {
        if token != RTO_TOKEN || self.base.finished() {
            return;
        }
        if ctx.now.saturating_sub(self.base.last_ack) >= self.base.rto()
            && !self.base.outstanding.is_empty()
        {
            self.base.rto_recover();
        }
        self.arm_rto(ctx);
    }

    fn try_send(&mut self, now: Time) -> TrySend {
        self.base.try_send(self.cc.cwnd(), now)
    }

    fn on_sent(&mut self, sent: TrySend, ctx: &mut TransportCtx<'_>) {
        self.base.on_sent(sent, self.cc.cwnd(), ctx.now);
    }

    fn is_finished(&self) -> bool {
        self.base.finished()
    }

    fn cwnd_bytes(&self) -> f64 {
        self.cc.cwnd()
    }

    fn retransmits(&self) -> u64 {
        self.base.retransmits
    }
}
