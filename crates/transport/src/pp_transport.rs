//! The PrioPlus-enhanced transport: binds the [`prioplus`] state machine to
//! the simulator's transport interface — probing timers, suspension, and
//! delegation to the wrapped delay CC. This is the counterpart of the
//! paper's 79-line DPDK integration.

use netsim::{AckEvent, AckKind, Transport, TransportCtx, TrySend};
use prioplus::{Action, DelayCc, PrioPlus, PrioPlusConfig};
use simcore::event::ScheduledId;
use simcore::Time;

use crate::sender::{SenderBase, RTO_TOKEN};

/// Timer token for a scheduled probe transmission.
pub const PROBE_TOKEN: u64 = 0x9205E;
/// Timer token for probe-loss recovery ("probe losses are recovered through
/// the original CC's RTO", §4.2.1).
pub const PROBE_RTO_TOKEN: u64 = 0x9205F;

/// A transport enhanced with PrioPlus virtual priority.
#[derive(Clone, Debug)]
pub struct PrioPlusTransport<C: DelayCc> {
    base: SenderBase,
    pp: PrioPlus<C>,
    /// A probe should be handed to the NIC at the next pull.
    probe_armed: bool,
    probe_timer: Option<ScheduledId>,
    probe_rto_timer: Option<ScheduledId>,
    rto_timer: Option<ScheduledId>,
    /// Delay observed in the most recent measurement (for probe-RTO
    /// rescheduling).
    last_delay: Time,
}

impl<C: DelayCc> PrioPlusTransport<C> {
    /// Wrap `cc` with PrioPlus using `cfg`.
    pub fn new(base: SenderBase, cfg: PrioPlusConfig, cc: C) -> Self {
        let last_delay = cfg.base_rtt;
        PrioPlusTransport {
            base,
            pp: PrioPlus::new(cfg, cc),
            probe_armed: false,
            probe_timer: None,
            probe_rto_timer: None,
            rto_timer: None,
            last_delay,
        }
    }

    /// Borrow the PrioPlus state machine (diagnostics).
    pub fn prioplus(&self) -> &PrioPlus<C> {
        &self.pp
    }

    /// Borrow the sender base (diagnostics).
    pub fn base(&self) -> &SenderBase {
        &self.base
    }

    fn arm_rto(&mut self, ctx: &mut TransportCtx<'_>) {
        if let Some(id) = self.rto_timer.take() {
            ctx.cancel_timer(id);
        }
        let at = ctx.now + self.base.rto();
        self.rto_timer = Some(ctx.schedule_timer(at, RTO_TOKEN));
    }

    fn schedule_probe(&mut self, delay_from_now: Time, ctx: &mut TransportCtx<'_>) {
        if let Some(id) = self.probe_timer.take() {
            ctx.cancel_timer(id);
        }
        if delay_from_now == Time::ZERO {
            self.probe_armed = true;
        } else {
            self.probe_timer = Some(ctx.schedule_timer(ctx.now + delay_from_now, PROBE_TOKEN));
        }
    }

    fn handle_action(&mut self, action: Action, ctx: &mut TransportCtx<'_>) {
        match action {
            Action::Continue => {}
            Action::StopAndProbe { probe_in } | Action::ProbeAgain { probe_in } => {
                self.schedule_probe(probe_in, ctx);
            }
            Action::Resume => {
                // RTT-round tracking restarts; the host will poke us.
                self.arm_rto(ctx);
            }
        }
    }
}

impl<C: DelayCc + Clone + Send + Sync + 'static> Transport for PrioPlusTransport<C> {
    fn clone_box(&self) -> Box<dyn Transport> {
        Box::new(self.clone())
    }

    fn on_start(&mut self, ctx: &mut TransportCtx<'_>) {
        let action = self.pp.on_flow_start();
        self.handle_action(action, ctx);
        self.arm_rto(ctx);
    }

    fn on_ack(&mut self, ack: &AckEvent, ctx: &mut TransportCtx<'_>) {
        self.last_delay = ack.delay;
        ctx.trace_delay(ack.delay);
        match ack.kind {
            AckKind::Data => {
                let newly = self.base.on_ack(ack, ctx.now);
                let action = self.pp.on_data_ack(
                    ack.delay,
                    ack.acked_seq,
                    self.base.snd_nxt,
                    newly.max(ack.acked_bytes),
                    ctx.now,
                );
                self.handle_action(action, ctx);
                if !self.base.finished() {
                    self.arm_rto(ctx);
                } else if let Some(id) = self.rto_timer.take() {
                    ctx.cancel_timer(id);
                }
            }
            AckKind::Probe => {
                self.base.last_ack = ctx.now;
                if let Some(id) = self.probe_rto_timer.take() {
                    ctx.cancel_timer(id);
                }
                let action = self.pp.on_probe_ack(ack.delay, self.base.snd_nxt);
                self.handle_action(action, ctx);
            }
        }
        ctx.trace_cwnd(self.pp.cwnd());
    }

    fn on_timer(&mut self, token: u64, ctx: &mut TransportCtx<'_>) {
        match token {
            PROBE_TOKEN => {
                self.probe_timer = None;
                if self.pp.suspended() {
                    self.probe_armed = true;
                }
            }
            PROBE_RTO_TOKEN => {
                self.probe_rto_timer = None;
                if self.pp.suspended() && !self.probe_armed && self.probe_timer.is_none() {
                    // Probe (or its echo) lost: retry immediately.
                    self.probe_armed = true;
                }
            }
            RTO_TOKEN => {
                if self.base.finished() {
                    return;
                }
                if !self.pp.suspended()
                    && ctx.now.saturating_sub(self.base.last_ack) >= self.base.rto()
                    && !self.base.outstanding.is_empty()
                {
                    self.base.rto_recover();
                }
                self.arm_rto(ctx);
            }
            _ => {}
        }
    }

    fn try_send(&mut self, now: Time) -> TrySend {
        if self.probe_armed {
            return TrySend::Probe;
        }
        if self.pp.suspended() {
            if self.base.finished() {
                return TrySend::Finished;
            }
            return TrySend::Blocked;
        }
        self.base.try_send(self.pp.cwnd(), now)
    }

    fn on_sent(&mut self, sent: TrySend, ctx: &mut TransportCtx<'_>) {
        match sent {
            TrySend::Probe => {
                self.probe_armed = false;
                // Probe-loss recovery: if the echo does not come back within
                // a deadline scaled to the worst observed queueing, retry
                // ("probe losses are recovered through the original CC's
                // RTO", §4.2.1).
                if let Some(id) = self.probe_rto_timer.take() {
                    ctx.cancel_timer(id);
                }
                let deadline =
                    self.last_delay.mul_f64(3.0) + self.pp.config().base_rtt.mul_f64(8.0);
                self.probe_rto_timer =
                    Some(ctx.schedule_timer(ctx.now + deadline, PROBE_RTO_TOKEN));
            }
            data @ TrySend::Data { .. } => {
                self.base.on_sent(data, self.pp.cwnd(), ctx.now);
            }
            _ => {}
        }
    }

    fn is_finished(&self) -> bool {
        self.base.finished()
    }

    fn cwnd_bytes(&self) -> f64 {
        self.pp.cwnd()
    }

    fn retransmits(&self) -> u64 {
        self.base.retransmits
    }

    fn check_invariants(&self) -> Result<(), String> {
        self.base.check_invariants()?;
        self.pp.cc().check_invariants()?;
        if !self.pp.cwnd().is_finite() || self.pp.cwnd() < 0.0 {
            return Err(format!("prioplus cwnd {} invalid", self.pp.cwnd()));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sender::SenderBase;
    use netsim::Event;
    use netsim::{AckKind, FlowParams};
    use prioplus::cc::SimpleAimd;
    use simcore::{EventQueue, Rate};

    fn params(size: u64) -> FlowParams {
        FlowParams {
            flow: 0,
            size,
            line_rate: Rate::from_gbps(100),
            base_rtt: Time::from_us(12),
            base_rtt_probe: Time::from_us(11),
            mtu: 1000,
            virt_prio: 1,
            seed: 1,
        }
    }

    fn cfg(probe_before_start: bool) -> PrioPlusConfig {
        PrioPlusConfig {
            d_target: Time::from_us(16),
            d_limit: Time::from_us_f64(18.4),
            base_rtt: Time::from_us(12),
            near_base_eps: Time::from_us_f64(0.8),
            w_ls: 150_000.0,
            line_rate: Rate::from_gbps(100),
            probe_before_start,
            mtu: 1000,
            seed: 7,
            dual_rtt: true,
        }
    }

    fn mk(probe_before_start: bool) -> PrioPlusTransport<SimpleAimd> {
        let cc = SimpleAimd::new(Time::from_us(16), 1000.0, 10_000.0, 1e9);
        PrioPlusTransport::new(
            SenderBase::new(params(10_000_000)),
            cfg(probe_before_start),
            cc,
        )
    }

    fn data_ack(seq: u64, delay_us: f64) -> AckEvent {
        AckEvent {
            kind: AckKind::Data,
            delay: Time::from_us_f64(delay_us),
            cum_bytes: seq + 1000,
            acked_seq: seq,
            acked_bytes: 1000,
            ecn_echo: false,
            nack: None,
            int: None,
        }
    }

    fn probe_ack(delay_us: f64) -> AckEvent {
        AckEvent {
            kind: AckKind::Probe,
            delay: Time::from_us_f64(delay_us),
            cum_bytes: 0,
            acked_seq: 0,
            acked_bytes: 0,
            ecn_echo: false,
            nack: None,
            int: None,
        }
    }

    #[test]
    fn probe_before_start_pulls_a_probe_first() {
        let mut t = mk(true);
        let mut q = EventQueue::<Event>::new();
        {
            let mut ctx = TransportCtx::for_test(&mut q, Time::ZERO, 0);
            t.on_start(&mut ctx);
        }
        assert!(t.prioplus().suspended());
        assert_eq!(t.try_send(Time::ZERO), TrySend::Probe);
        // Confirming the probe send disarms it and arms probe-loss recovery.
        let mut ctx = TransportCtx::for_test(&mut q, Time::ZERO, 0);
        t.on_sent(TrySend::Probe, &mut ctx);
        assert_eq!(t.try_send(Time::from_us(1)), TrySend::Blocked);
        t.check_invariants().unwrap();
    }

    #[test]
    fn empty_path_probe_echo_resumes_with_linear_start() {
        let mut t = mk(true);
        let mut q = EventQueue::<Event>::new();
        let mut ctx = TransportCtx::for_test(&mut q, Time::ZERO, 0);
        t.on_start(&mut ctx);
        t.on_sent(TrySend::Probe, &mut ctx);
        // Echo at the probe base RTT: the path is empty.
        let mut ctx = TransportCtx::for_test(&mut q, Time::from_us(11), 0);
        t.on_ack(&probe_ack(12.0), &mut ctx);
        assert!(!t.prioplus().suspended());
        assert_eq!(t.cwnd_bytes(), 150_000.0, "linear-start window W_LS");
        assert!(matches!(t.try_send(Time::from_us(11)), TrySend::Data { .. }));
        t.check_invariants().unwrap();
    }

    #[test]
    fn contended_channel_probe_echo_resumes_with_one_packet() {
        let mut t = mk(true);
        let mut q = EventQueue::<Event>::new();
        let mut ctx = TransportCtx::for_test(&mut q, Time::ZERO, 0);
        t.on_start(&mut ctx);
        t.on_sent(TrySend::Probe, &mut ctx);
        // Delay inside (base, D_limit): same-priority traffic present —
        // conservative resume with exactly one MTU (§4.4).
        let mut ctx = TransportCtx::for_test(&mut q, Time::from_us(15), 0);
        t.on_ack(&probe_ack(15.0), &mut ctx);
        assert!(!t.prioplus().suspended());
        assert_eq!(t.cwnd_bytes(), 1_000.0);
        t.check_invariants().unwrap();
    }

    #[test]
    fn two_over_limit_acks_suspend_and_probe_timer_arms_probe() {
        let mut t = mk(false);
        let mut q = EventQueue::<Event>::new();
        let mut ctx = TransportCtx::for_test(&mut q, Time::ZERO, 0);
        t.on_start(&mut ctx);
        assert!(!t.prioplus().suspended());
        // Put two packets in flight so the ACKs hit outstanding sequences.
        for _ in 0..2 {
            let d = t.try_send(Time::ZERO);
            let mut ctx = TransportCtx::for_test(&mut q, Time::ZERO, 0);
            t.on_sent(d, &mut ctx);
        }
        // One over-D_limit sample is filtered noise; two suspend the flow.
        let mut ctx = TransportCtx::for_test(&mut q, Time::from_us(20), 0);
        t.on_ack(&data_ack(0, 25.0), &mut ctx);
        assert!(!t.prioplus().suspended());
        let mut ctx = TransportCtx::for_test(&mut q, Time::from_us(21), 0);
        t.on_ack(&data_ack(1000, 25.0), &mut ctx);
        assert!(t.prioplus().suspended());
        assert_eq!(t.try_send(Time::from_us(21)), TrySend::Blocked);
        // The collision-avoidance delay elapses; the timer arms the probe.
        let mut ctx = TransportCtx::for_test(&mut q, Time::from_us(60), 0);
        t.on_timer(PROBE_TOKEN, &mut ctx);
        assert_eq!(t.try_send(Time::from_us(60)), TrySend::Probe);
        t.check_invariants().unwrap();
    }

    #[test]
    fn lost_probe_is_retried_after_probe_rto() {
        let mut t = mk(true);
        let mut q = EventQueue::<Event>::new();
        let mut ctx = TransportCtx::for_test(&mut q, Time::ZERO, 0);
        t.on_start(&mut ctx);
        t.on_sent(TrySend::Probe, &mut ctx);
        assert_eq!(t.try_send(Time::from_us(1)), TrySend::Blocked);
        // No echo: the probe-RTO fires and re-arms the probe.
        let mut ctx = TransportCtx::for_test(&mut q, Time::from_ms(1), 0);
        t.on_timer(PROBE_RTO_TOKEN, &mut ctx);
        assert_eq!(t.try_send(Time::from_ms(1)), TrySend::Probe);
        t.check_invariants().unwrap();
    }

    #[test]
    fn still_contended_echo_keeps_probing() {
        let mut t = mk(true);
        let mut q = EventQueue::<Event>::new();
        let mut ctx = TransportCtx::for_test(&mut q, Time::ZERO, 0);
        t.on_start(&mut ctx);
        t.on_sent(TrySend::Probe, &mut ctx);
        // Echo still above D_limit: stay suspended, another probe is
        // scheduled (timer or armed, depending on the jitter draw).
        let mut ctx = TransportCtx::for_test(&mut q, Time::from_us(30), 0);
        t.on_ack(&probe_ack(30.0), &mut ctx);
        assert!(t.prioplus().suspended());
        assert_ne!(t.try_send(Time::from_us(30)), TrySend::Finished);
        t.check_invariants().unwrap();
    }
}
