//! The PrioPlus-enhanced transport: binds the [`prioplus`] state machine to
//! the simulator's transport interface — probing timers, suspension, and
//! delegation to the wrapped delay CC. This is the counterpart of the
//! paper's 79-line DPDK integration.

use netsim::{AckEvent, AckKind, Transport, TransportCtx, TrySend};
use prioplus::{Action, DelayCc, PrioPlus, PrioPlusConfig};
use simcore::event::ScheduledId;
use simcore::Time;

use crate::sender::{SenderBase, RTO_TOKEN};

/// Timer token for a scheduled probe transmission.
pub const PROBE_TOKEN: u64 = 0x9205E;
/// Timer token for probe-loss recovery ("probe losses are recovered through
/// the original CC's RTO", §4.2.1).
pub const PROBE_RTO_TOKEN: u64 = 0x9205F;

/// A transport enhanced with PrioPlus virtual priority.
pub struct PrioPlusTransport<C: DelayCc> {
    base: SenderBase,
    pp: PrioPlus<C>,
    /// A probe should be handed to the NIC at the next pull.
    probe_armed: bool,
    probe_timer: Option<ScheduledId>,
    probe_rto_timer: Option<ScheduledId>,
    rto_timer: Option<ScheduledId>,
    /// Delay observed in the most recent measurement (for probe-RTO
    /// rescheduling).
    last_delay: Time,
}

impl<C: DelayCc> PrioPlusTransport<C> {
    /// Wrap `cc` with PrioPlus using `cfg`.
    pub fn new(base: SenderBase, cfg: PrioPlusConfig, cc: C) -> Self {
        let last_delay = cfg.base_rtt;
        PrioPlusTransport {
            base,
            pp: PrioPlus::new(cfg, cc),
            probe_armed: false,
            probe_timer: None,
            probe_rto_timer: None,
            rto_timer: None,
            last_delay,
        }
    }

    /// Borrow the PrioPlus state machine (diagnostics).
    pub fn prioplus(&self) -> &PrioPlus<C> {
        &self.pp
    }

    /// Borrow the sender base (diagnostics).
    pub fn base(&self) -> &SenderBase {
        &self.base
    }

    fn arm_rto(&mut self, ctx: &mut TransportCtx<'_>) {
        if let Some(id) = self.rto_timer.take() {
            ctx.cancel_timer(id);
        }
        let at = ctx.now + self.base.rto();
        self.rto_timer = Some(ctx.schedule_timer(at, RTO_TOKEN));
    }

    fn schedule_probe(&mut self, delay_from_now: Time, ctx: &mut TransportCtx<'_>) {
        if let Some(id) = self.probe_timer.take() {
            ctx.cancel_timer(id);
        }
        if delay_from_now == Time::ZERO {
            self.probe_armed = true;
        } else {
            self.probe_timer = Some(ctx.schedule_timer(ctx.now + delay_from_now, PROBE_TOKEN));
        }
    }

    fn handle_action(&mut self, action: Action, ctx: &mut TransportCtx<'_>) {
        match action {
            Action::Continue => {}
            Action::StopAndProbe { probe_in } | Action::ProbeAgain { probe_in } => {
                self.schedule_probe(probe_in, ctx);
            }
            Action::Resume => {
                // RTT-round tracking restarts; the host will poke us.
                self.arm_rto(ctx);
            }
        }
    }
}

impl<C: DelayCc> Transport for PrioPlusTransport<C> {
    fn on_start(&mut self, ctx: &mut TransportCtx<'_>) {
        let action = self.pp.on_flow_start();
        self.handle_action(action, ctx);
        self.arm_rto(ctx);
    }

    fn on_ack(&mut self, ack: &AckEvent, ctx: &mut TransportCtx<'_>) {
        self.last_delay = ack.delay;
        ctx.trace_delay(ack.delay);
        match ack.kind {
            AckKind::Data => {
                let newly = self.base.on_ack(ack, ctx.now);
                let action = self.pp.on_data_ack(
                    ack.delay,
                    ack.acked_seq,
                    self.base.snd_nxt,
                    newly.max(ack.acked_bytes),
                    ctx.now,
                );
                self.handle_action(action, ctx);
                if !self.base.finished() {
                    self.arm_rto(ctx);
                } else if let Some(id) = self.rto_timer.take() {
                    ctx.cancel_timer(id);
                }
            }
            AckKind::Probe => {
                self.base.last_ack = ctx.now;
                if let Some(id) = self.probe_rto_timer.take() {
                    ctx.cancel_timer(id);
                }
                let action = self.pp.on_probe_ack(ack.delay, self.base.snd_nxt);
                self.handle_action(action, ctx);
            }
        }
        ctx.trace_cwnd(self.pp.cwnd());
    }

    fn on_timer(&mut self, token: u64, ctx: &mut TransportCtx<'_>) {
        match token {
            PROBE_TOKEN => {
                self.probe_timer = None;
                if self.pp.suspended() {
                    self.probe_armed = true;
                }
            }
            PROBE_RTO_TOKEN => {
                self.probe_rto_timer = None;
                if self.pp.suspended() && !self.probe_armed && self.probe_timer.is_none() {
                    // Probe (or its echo) lost: retry immediately.
                    self.probe_armed = true;
                }
            }
            RTO_TOKEN => {
                if self.base.finished() {
                    return;
                }
                if !self.pp.suspended()
                    && ctx.now.saturating_sub(self.base.last_ack) >= self.base.rto()
                    && !self.base.outstanding.is_empty()
                {
                    self.base.rto_recover();
                }
                self.arm_rto(ctx);
            }
            _ => {}
        }
    }

    fn try_send(&mut self, now: Time) -> TrySend {
        if self.probe_armed {
            return TrySend::Probe;
        }
        if self.pp.suspended() {
            if self.base.finished() {
                return TrySend::Finished;
            }
            return TrySend::Blocked;
        }
        self.base.try_send(self.pp.cwnd(), now)
    }

    fn on_sent(&mut self, sent: TrySend, ctx: &mut TransportCtx<'_>) {
        match sent {
            TrySend::Probe => {
                self.probe_armed = false;
                // Probe-loss recovery: if the echo does not come back within
                // a deadline scaled to the worst observed queueing, retry
                // ("probe losses are recovered through the original CC's
                // RTO", §4.2.1).
                if let Some(id) = self.probe_rto_timer.take() {
                    ctx.cancel_timer(id);
                }
                let deadline =
                    self.last_delay.mul_f64(3.0) + self.pp.config().base_rtt.mul_f64(8.0);
                self.probe_rto_timer =
                    Some(ctx.schedule_timer(ctx.now + deadline, PROBE_RTO_TOKEN));
            }
            data @ TrySend::Data { .. } => {
                self.base.on_sent(data, self.pp.cwnd(), ctx.now);
            }
            _ => {}
        }
    }

    fn is_finished(&self) -> bool {
        self.base.finished()
    }

    fn cwnd_bytes(&self) -> f64 {
        self.pp.cwnd()
    }

    fn retransmits(&self) -> u64 {
        self.base.retransmits
    }
}
