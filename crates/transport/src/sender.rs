//! Shared sender-side mechanics: sequencing, window gating, sub-MTU pacing,
//! RTO, and selective (IRN-style) retransmission.
//!
//! Every transport in this crate delegates the data-plane bookkeeping to
//! [`SenderBase`] and contributes only its congestion-window policy.

use std::collections::{BTreeSet, VecDeque};

use netsim::{AckEvent, FlowParams, TrySend};
use simcore::Time;

/// Timer token used by [`SenderBase`]-driven retransmission timeouts.
pub const RTO_TOKEN: u64 = 0x5210;

/// Sender-side data-plane state shared by all window-based transports.
#[derive(Clone, Debug)]
pub struct SenderBase {
    /// Static flow parameters.
    pub params: FlowParams,
    /// Next new payload byte to send.
    pub snd_nxt: u64,
    /// Distinct payload bytes acknowledged.
    pub acked: u64,
    /// Bytes currently in flight.
    pub inflight: u64,
    /// Sequences of sent-but-unacknowledged packets.
    pub outstanding: BTreeSet<u64>,
    /// Packets queued for retransmission `(seq, len)`.
    pub rtx_queue: VecDeque<(u64, u32)>,
    /// Sequences already queued for retransmission (dedup).
    rtx_pending: BTreeSet<u64>,
    /// Total retransmitted packets.
    pub retransmits: u64,
    /// Smoothed RTT (initialized to base RTT).
    pub srtt: Time,
    /// Time of the last received ACK.
    pub last_ack: Time,
    /// Earliest time the next packet may leave (sub-MTU-window pacing).
    pub pace_next: Time,
    /// Consecutive RTO firings without an intervening ACK (exponential
    /// backoff; a starved low-priority flow must not spray go-back-N
    /// retransmissions while it is simply being preempted).
    pub rto_backoff: u32,
}

impl SenderBase {
    /// Fresh sender state for a flow.
    pub fn new(params: FlowParams) -> Self {
        let srtt = params.base_rtt;
        SenderBase {
            params,
            snd_nxt: 0,
            acked: 0,
            inflight: 0,
            outstanding: BTreeSet::new(),
            rtx_queue: VecDeque::new(),
            rtx_pending: BTreeSet::new(),
            retransmits: 0,
            srtt,
            last_ack: Time::ZERO,
            pace_next: Time::ZERO,
            rto_backoff: 0,
        }
    }

    /// True when every payload byte has been acknowledged.
    pub fn finished(&self) -> bool {
        self.acked >= self.params.size
    }

    /// Remaining new bytes not yet sent.
    pub fn remaining(&self) -> u64 {
        self.params.size.saturating_sub(self.snd_nxt)
    }

    /// Size of the next new segment.
    pub fn next_len(&self) -> u32 {
        self.remaining().min(self.params.mtu as u64) as u32
    }

    /// The standard window-gated send decision given the CC's window
    /// (bytes). Retransmissions take precedence over new data. Sub-MTU
    /// windows degrade to paced single packets.
    pub fn try_send(&self, cwnd: f64, now: Time) -> TrySend {
        if self.finished() {
            return TrySend::Finished;
        }
        // Pick the candidate packet.
        let (seq, len, is_rtx) = if let Some(&(seq, len)) = self.rtx_queue.front() {
            (seq, len, true)
        } else if self.remaining() > 0 {
            (self.snd_nxt, self.next_len(), false)
        } else {
            // Everything sent, awaiting ACKs.
            return TrySend::Blocked;
        };
        let _ = is_rtx;
        if cwnd >= self.params.mtu as f64 {
            // Pure window/ACK clocking.
            if self.inflight + len as u64 <= cwnd as u64 {
                TrySend::Data { seq, bytes: len }
            } else {
                TrySend::Blocked
            }
        } else {
            // Sub-MTU window: one packet at a time, paced so that the
            // average rate is cwnd/srtt (Swift's fractional-cwnd pacing).
            if self.inflight > 0 {
                return TrySend::Blocked;
            }
            if now < self.pace_next {
                return TrySend::NotBefore(self.pace_next);
            }
            TrySend::Data { seq, bytes: len }
        }
    }

    /// Confirm a send decided by [`SenderBase::try_send`].
    pub fn on_sent(&mut self, sent: TrySend, cwnd: f64, now: Time) {
        let TrySend::Data { seq, bytes } = sent else {
            return;
        };
        if let Some(&(fseq, _)) = self.rtx_queue.front() {
            if fseq == seq {
                self.rtx_queue.pop_front();
                self.rtx_pending.remove(&seq);
                self.retransmits += 1;
            }
        }
        if seq == self.snd_nxt {
            self.snd_nxt += bytes as u64;
        }
        self.outstanding.insert(seq);
        self.inflight += bytes as u64;
        if cwnd < self.params.mtu as f64 {
            // Schedule the pacing gap for the next sub-MTU-window packet.
            let gap = self.srtt.mul_f64(self.params.mtu as f64 / cwnd.max(1.0));
            self.pace_next = now + gap;
        }
    }

    /// Process the data-plane part of an ACK. Returns the number of payload
    /// bytes newly acknowledged.
    pub fn on_ack(&mut self, ack: &AckEvent, now: Time) -> u32 {
        self.last_ack = now;
        self.rto_backoff = 0;
        // Srtt EWMA (alpha = 1/8), on the normalized delay.
        let s = self.srtt.as_ps() as f64 * 0.875 + ack.delay.as_ps() as f64 * 0.125;
        self.srtt = Time::from_ps(s as u64);
        let mut newly = 0;
        if self.outstanding.remove(&ack.acked_seq) {
            newly = ack.acked_bytes;
            self.acked += ack.acked_bytes as u64;
            self.inflight = self.inflight.saturating_sub(ack.acked_bytes as u64);
        } else if self.rtx_pending.remove(&ack.acked_seq) {
            // The "lost" packet was acknowledged before its retransmission
            // left: drop it from the queue.
            self.rtx_queue.retain(|&(s, _)| s != ack.acked_seq);
            newly = ack.acked_bytes;
            self.acked += ack.acked_bytes as u64;
        }
        if let Some((from, to)) = ack.nack {
            self.queue_rtx_range(from, to);
        }
        newly
    }

    /// Queue every outstanding packet in `[from, to)` for retransmission
    /// (selective repeat, IRN-style).
    pub fn queue_rtx_range(&mut self, from: u64, to: u64) {
        let seqs: Vec<u64> = self
            .outstanding
            .range(from..to)
            .copied()
            .filter(|s| !self.rtx_pending.contains(s))
            .collect();
        for seq in seqs {
            self.outstanding.remove(&seq);
            let len = (self.params.size - seq).min(self.params.mtu as u64) as u32;
            self.inflight = self.inflight.saturating_sub(len as u64);
            self.rtx_queue.push_back((seq, len));
            self.rtx_pending.insert(seq);
        }
    }

    /// Full timeout recovery: every outstanding packet is considered lost.
    pub fn rto_recover(&mut self) {
        let (from, to) = (0, u64::MAX);
        self.queue_rtx_range(from, to);
        self.inflight = 0;
        self.rto_backoff = (self.rto_backoff + 1).min(8);
    }

    /// Retransmission timeout duration: generous so it only fires on real
    /// trailing loss (the simulator is lossless unless PFC is disabled).
    pub fn rto(&self) -> Time {
        let base =
            (self.srtt.mul_f64(4.0) + self.params.base_rtt.mul_f64(8.0)).max(Time::from_us(100));
        base.mul_f64((1u64 << self.rto_backoff.min(8)) as f64)
    }

    /// Audit hook: sequence- and timer-state sanity shared by every
    /// transport built on [`SenderBase`].
    pub fn check_invariants(&self) -> Result<(), String> {
        if self.acked > self.params.size {
            return Err(format!(
                "acked {} B > flow size {} B",
                self.acked, self.params.size
            ));
        }
        if self.snd_nxt > self.params.size {
            return Err(format!(
                "snd_nxt {} > flow size {}",
                self.snd_nxt, self.params.size
            ));
        }
        if self.rto_backoff > 8 {
            return Err(format!("rto_backoff {} > 8", self.rto_backoff));
        }
        if self.srtt == Time::ZERO {
            return Err("srtt collapsed to zero".to_string());
        }
        let pending = self.rtx_pending.len();
        if self.rtx_queue.len() != pending {
            return Err(format!(
                "rtx queue len {} != pending set len {pending}",
                self.rtx_queue.len()
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::AckKind;
    use simcore::Rate;

    fn params(size: u64) -> FlowParams {
        FlowParams {
            flow: 0,
            size,
            line_rate: Rate::from_gbps(100),
            base_rtt: Time::from_us(12),
            base_rtt_probe: Time::from_us(11),
            mtu: 1000,
            virt_prio: 0,
            seed: 1,
        }
    }

    fn ack(seq: u64, bytes: u32, delay_us: u64) -> AckEvent {
        AckEvent {
            kind: AckKind::Data,
            delay: Time::from_us(delay_us),
            cum_bytes: seq + bytes as u64,
            acked_seq: seq,
            acked_bytes: bytes,
            ecn_echo: false,
            nack: None,
            int: None,
        }
    }

    #[test]
    fn window_gates_inflight() {
        let mut b = SenderBase::new(params(10_000));
        let cwnd = 3_000.0;
        for _ in 0..3 {
            let d = b.try_send(cwnd, Time::ZERO);
            let TrySend::Data { .. } = d else {
                panic!("expected send, got {d:?}")
            };
            b.on_sent(d, cwnd, Time::ZERO);
        }
        assert_eq!(b.inflight, 3_000);
        assert_eq!(b.try_send(cwnd, Time::ZERO), TrySend::Blocked);
        // An ACK opens the window again.
        b.on_ack(&ack(0, 1000, 12), Time::from_us(12));
        assert!(matches!(
            b.try_send(cwnd, Time::from_us(12)),
            TrySend::Data { seq: 3000, .. }
        ));
    }

    #[test]
    fn sub_mtu_window_paces() {
        let mut b = SenderBase::new(params(10_000));
        let cwnd = 150.0; // 100 Mbps at 12us srtt
        let d = b.try_send(cwnd, Time::ZERO);
        assert!(matches!(d, TrySend::Data { .. }));
        b.on_sent(d, cwnd, Time::ZERO);
        // Next send blocked by inflight until ACK, then paced.
        assert_eq!(b.try_send(cwnd, Time::from_us(1)), TrySend::Blocked);
        b.on_ack(&ack(0, 1000, 12), Time::from_us(12));
        match b.try_send(cwnd, Time::from_us(13)) {
            TrySend::NotBefore(t) => {
                // pace gap = srtt * mtu/cwnd ~ 12us * 6.67 = 80us.
                assert!(t > Time::from_us(60) && t < Time::from_us(120), "{t}");
            }
            other => panic!("expected pacing delay, got {other:?}"),
        }
    }

    #[test]
    fn last_segment_is_runt() {
        let mut b = SenderBase::new(params(2_500));
        let cwnd = 1e9;
        for expect in [1000u32, 1000, 500] {
            let d = b.try_send(cwnd, Time::ZERO);
            let TrySend::Data { bytes, .. } = d else {
                panic!()
            };
            assert_eq!(bytes, expect);
            b.on_sent(d, cwnd, Time::ZERO);
        }
        assert_eq!(b.try_send(cwnd, Time::ZERO), TrySend::Blocked);
        b.on_ack(&ack(0, 1000, 12), Time::from_us(1));
        b.on_ack(&ack(1000, 1000, 12), Time::from_us(2));
        b.on_ack(&ack(2000, 500, 12), Time::from_us(3));
        assert!(b.finished());
        assert_eq!(b.try_send(cwnd, Time::from_us(4)), TrySend::Finished);
    }

    #[test]
    fn nack_triggers_selective_retransmit() {
        let mut b = SenderBase::new(params(5_000));
        let cwnd = 1e9;
        for _ in 0..5 {
            let d = b.try_send(cwnd, Time::ZERO);
            b.on_sent(d, cwnd, Time::ZERO);
        }
        // Packet at seq 1000 lost; receiver acks 2000 with nack [1000,2000).
        let mut a = ack(2000, 1000, 12);
        a.nack = Some((1000, 2000));
        b.on_ack(&a, Time::from_us(12));
        let d = b.try_send(cwnd, Time::from_us(13));
        assert!(matches!(
            d,
            TrySend::Data {
                seq: 1000,
                bytes: 1000
            }
        ));
        b.on_sent(d, cwnd, Time::from_us(13));
        assert_eq!(b.retransmits, 1);
        // Retransmitted packet gets acked normally: 1000 (seq 2000's ack)
        // + 1000 (the retransmitted seq 1000) acknowledged so far.
        b.on_ack(&ack(1000, 1000, 12), Time::from_us(25));
        assert_eq!(b.acked, 2000);
    }

    #[test]
    fn duplicate_acks_do_not_double_count() {
        let mut b = SenderBase::new(params(2_000));
        let cwnd = 1e9;
        let d = b.try_send(cwnd, Time::ZERO);
        b.on_sent(d, cwnd, Time::ZERO);
        b.on_ack(&ack(0, 1000, 12), Time::from_us(12));
        b.on_ack(&ack(0, 1000, 12), Time::from_us(13));
        assert_eq!(b.acked, 1000);
        assert_eq!(b.inflight, 0);
    }

    #[test]
    fn rto_requeues_everything_outstanding() {
        let mut b = SenderBase::new(params(3_000));
        let cwnd = 1e9;
        for _ in 0..3 {
            let d = b.try_send(cwnd, Time::ZERO);
            b.on_sent(d, cwnd, Time::ZERO);
        }
        b.rto_recover();
        assert_eq!(b.inflight, 0);
        assert_eq!(b.rtx_queue.len(), 3);
        let d = b.try_send(cwnd, Time::from_us(1));
        assert!(matches!(d, TrySend::Data { seq: 0, .. }));
    }

    #[test]
    fn ack_of_rtx_pending_packet_cancels_retransmit() {
        let mut b = SenderBase::new(params(3_000));
        let cwnd = 1e9;
        for _ in 0..3 {
            let d = b.try_send(cwnd, Time::ZERO);
            b.on_sent(d, cwnd, Time::ZERO);
        }
        b.queue_rtx_range(1000, 2000);
        // The ACK of the supposedly-lost packet arrives late.
        b.on_ack(&ack(1000, 1000, 12), Time::from_us(12));
        assert!(b.rtx_queue.is_empty());
        assert_eq!(b.acked, 1000);
    }

    #[test]
    fn srtt_tracks_delay() {
        let mut b = SenderBase::new(params(1_000_000));
        for _ in 0..100 {
            b.on_ack(&ack(u64::MAX - 1, 0, 40), Time::from_us(50));
        }
        assert!(b.srtt > Time::from_us(35), "srtt {}", b.srtt);
    }
}
