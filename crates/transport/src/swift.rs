//! Swift congestion control (Kumar et al., SIGCOMM '20), at the fidelity
//! the PrioPlus paper uses it: a window-based controller targeting a fabric
//! delay, with additive increase below target, multiplicative decrease
//! bounded by `max_mdf` at most once per RTT, fractional windows via pacing,
//! and optional flow-based **target scaling** (the mechanism §3.2 shows
//! breaks virtual priority, hence PrioPlus disables it).

use prioplus::DelayCc;
use simcore::Time;

/// Swift parameters.
#[derive(Clone, Copy, Debug)]
pub struct SwiftConfig {
    /// Base target delay (absolute, i.e. base RTT + queuing budget).
    pub target: Time,
    /// Additive increase per RTT, bytes.
    pub ai: f64,
    /// Multiplicative-decrease gain `beta`.
    pub beta: f64,
    /// Maximum fractional window decrease per decision.
    pub max_mdf: f64,
    /// Minimum congestion window, bytes (sets the minimum send rate that
    /// keeps congestion signals flowing, §3.3).
    pub min_cwnd: f64,
    /// Maximum congestion window, bytes.
    pub max_cwnd: f64,
    /// Initial window, bytes.
    pub init_cwnd: f64,
    /// Enable flow-based target scaling.
    pub target_scaling: bool,
    /// Target-scaling range added on top of `target` (`fs_range`).
    pub fs_range: Time,
    /// Window (in MTUs) below which scaling saturates at `fs_range`.
    pub fs_min_cwnd_pkts: f64,
    /// Window (in MTUs) above which scaling contributes nothing.
    pub fs_max_cwnd_pkts: f64,
    /// MTU in bytes.
    pub mtu: u32,
}

impl SwiftConfig {
    /// Defaults for the paper's 100 Gbps / 12 µs environment: target =
    /// base RTT + queuing budget, AI of one MTU per RTT, Swift's published
    /// beta/max_mdf, min rate ≈ 100 Mbps.
    pub fn datacenter(base_rtt: Time, target_queuing: Time, mtu: u32) -> Self {
        let min_cwnd = 100e6 / 8.0 * base_rtt.as_secs_f64(); // 100 Mbps
        SwiftConfig {
            target: base_rtt + target_queuing,
            ai: mtu as f64,
            beta: 0.8,
            max_mdf: 0.5,
            min_cwnd: min_cwnd.max(64.0),
            max_cwnd: 10_000_000.0,
            init_cwnd: 0.0, // 0 = line-rate BDP, filled by the factory
            target_scaling: false,
            // Swift's flow scaling spans a wide range so that heavy incast
            // degrees (cwnd << 1 packet) still find a stable target; the
            // large range is exactly what lets rate-reduced flows raise
            // their target and keep a weighted share (§3.2 / Fig 3b).
            fs_range: Time::from_us(100),
            fs_min_cwnd_pkts: 0.1,
            fs_max_cwnd_pkts: 1000.0,
            mtu,
        }
    }
}

/// Swift window state. Implements [`DelayCc`] so it can run standalone (via
/// [`crate::plain::CcTransport`]) or PrioPlus-enhanced (via
/// [`crate::pp_transport::PrioPlusTransport`]).
#[derive(Clone, Debug)]
pub struct SwiftCc {
    cfg: SwiftConfig,
    cwnd: f64,
    ai: f64,
    last_decrease: Time,
    srtt_hint: Time,
}

impl SwiftCc {
    /// New controller.
    pub fn new(cfg: SwiftConfig) -> Self {
        assert!(cfg.init_cwnd > 0.0, "init_cwnd must be set");
        assert!(cfg.min_cwnd > 0.0 && cfg.max_cwnd >= cfg.min_cwnd);
        SwiftCc {
            cwnd: cfg.init_cwnd.clamp(cfg.min_cwnd, cfg.max_cwnd),
            ai: cfg.ai,
            last_decrease: Time::ZERO,
            srtt_hint: cfg.target,
            cfg,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &SwiftConfig {
        &self.cfg
    }

    /// Effective target delay including flow scaling (Swift §3.1): as the
    /// window shrinks the flow assumes more competitors and tolerates more
    /// delay, `target + clamp(alpha/sqrt(cwnd_pkts) + beta_fs, 0, fs_range)`.
    pub fn effective_target(&self) -> Time {
        if !self.cfg.target_scaling {
            return self.cfg.target;
        }
        let fs_range = self.cfg.fs_range.as_ps() as f64;
        let inv_sqrt_min = 1.0 / self.cfg.fs_min_cwnd_pkts.sqrt();
        let inv_sqrt_max = 1.0 / self.cfg.fs_max_cwnd_pkts.sqrt();
        let alpha = fs_range / (inv_sqrt_min - inv_sqrt_max);
        let beta_fs = -alpha * inv_sqrt_max;
        let pkts = (self.cwnd / self.cfg.mtu as f64).max(1e-3);
        let extra = (alpha / pkts.sqrt() + beta_fs).clamp(0.0, fs_range);
        self.cfg.target + Time::from_ps(extra as u64)
    }

    /// Window after a retransmission timeout.
    pub fn on_rto(&mut self) {
        self.cwnd = self.cfg.min_cwnd;
    }
}

impl DelayCc for SwiftCc {
    fn on_ack(&mut self, delay: Time, acked_bytes: u32, now: Time) {
        let target = self.effective_target();
        let mtu = self.cfg.mtu as f64;
        if delay < target {
            // Additive increase: ai per RTT, spread per ACK.
            if self.cwnd >= mtu {
                self.cwnd += self.ai * acked_bytes as f64 / self.cwnd;
            } else {
                self.cwnd += self.ai * acked_bytes as f64 / mtu;
            }
        } else if now.saturating_sub(self.last_decrease) >= self.srtt_hint {
            let over = (delay.as_ps() - target.as_ps()) as f64 / delay.as_ps() as f64;
            // Decrease is capped at max_mdf per RTT.
            let cut = (self.cfg.beta * over).min(self.cfg.max_mdf);
            self.cwnd *= 1.0 - cut;
            self.last_decrease = now;
            self.srtt_hint = delay; // decrease pacing follows observed RTT
        }
        self.cwnd = self.cwnd.clamp(self.cfg.min_cwnd, self.cfg.max_cwnd);
    }

    fn cwnd(&self) -> f64 {
        self.cwnd
    }

    fn set_cwnd(&mut self, bytes: f64) {
        self.cwnd = bytes.clamp(self.cfg.min_cwnd, self.cfg.max_cwnd);
    }

    fn ai(&self) -> f64 {
        self.ai
    }

    fn set_ai(&mut self, bytes_per_rtt: f64) {
        self.ai = bytes_per_rtt.max(0.0);
    }

    fn ai_origin(&self) -> f64 {
        self.cfg.ai
    }

    fn target_delay(&self) -> Time {
        self.cfg.target
    }

    fn check_invariants(&self) -> Result<(), String> {
        if !self.cwnd.is_finite() {
            return Err(format!("swift cwnd {} is not finite", self.cwnd));
        }
        if self.cwnd < self.cfg.min_cwnd || self.cwnd > self.cfg.max_cwnd {
            return Err(format!(
                "swift cwnd {} outside [{}, {}]",
                self.cwnd, self.cfg.min_cwnd, self.cfg.max_cwnd
            ));
        }
        if !self.ai.is_finite() || self.ai < 0.0 {
            return Err(format!("swift ai step {} invalid", self.ai));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> SwiftConfig {
        let mut c = SwiftConfig::datacenter(Time::from_us(12), Time::from_us(4), 1000);
        c.init_cwnd = 150_000.0;
        c
    }

    #[test]
    fn increase_below_target_is_ai_per_rtt() {
        let mut s = SwiftCc::new(cfg());
        let w0 = s.cwnd();
        // One window's worth of ACKs below target adds ~ai bytes.
        let acks = (w0 / 1000.0) as usize;
        for i in 0..acks {
            s.on_ack(Time::from_us(13), 1000, Time::from_us(i as u64));
        }
        let gained = s.cwnd() - w0;
        assert!((gained - 1000.0).abs() < 50.0, "gained {gained}");
    }

    #[test]
    fn decrease_proportional_to_overshoot_and_capped() {
        let mut s = SwiftCc::new(cfg());
        // Slight overshoot: small cut.
        s.on_ack(Time::from_us(17), 1000, Time::from_us(100));
        let w1 = s.cwnd();
        assert!(w1 < 150_000.0 && w1 > 140_000.0, "w1 {w1}");
        // Huge overshoot later: cut capped at max_mdf.
        s.on_ack(Time::from_ms(1), 1000, Time::from_ms(1));
        assert!(s.cwnd() >= w1 * 0.5 - 1.0);
    }

    #[test]
    fn one_decrease_per_rtt() {
        let mut s = SwiftCc::new(cfg());
        s.on_ack(Time::from_us(20), 1000, Time::from_us(100));
        let w1 = s.cwnd();
        s.on_ack(Time::from_us(20), 1000, Time::from_us(101));
        assert_eq!(s.cwnd(), w1);
    }

    #[test]
    fn min_cwnd_implements_min_rate() {
        let c = cfg();
        // 100 Mbps * 12us = 150 bytes.
        assert!((c.min_cwnd - 150.0).abs() < 1.0);
        let mut s = SwiftCc::new(c);
        for i in 0..200 {
            s.on_ack(Time::from_ms(1), 1000, Time::from_ms(i + 1));
        }
        assert_eq!(s.cwnd(), 150.0);
    }

    #[test]
    fn target_scaling_raises_target_as_window_shrinks() {
        let mut c = cfg();
        c.target_scaling = true;
        let mut s = SwiftCc::new(c);
        let t_big = s.effective_target();
        s.set_cwnd(1_000.0); // 1 packet
        let t_small = s.effective_target();
        assert!(t_small > t_big, "{t_small} vs {t_big}");
        assert!(t_small <= c.target + c.fs_range + Time::from_ns(1));
        // At fs_max_cwnd packets, no extra target.
        s.set_cwnd(c.fs_max_cwnd_pkts * 1000.0);
        assert!(s.effective_target() <= c.target + Time::from_ns(10));
    }

    #[test]
    fn scaling_disabled_keeps_target_fixed() {
        let mut s = SwiftCc::new(cfg());
        s.set_cwnd(200.0);
        assert_eq!(s.effective_target(), cfg().target);
    }

    #[test]
    fn rto_collapses_to_min() {
        let mut s = SwiftCc::new(cfg());
        s.on_rto();
        assert_eq!(s.cwnd(), s.config().min_cwnd);
    }
}
