//! Ring all-reduce training-job traffic (the ML cluster scenario, §6.2).
//!
//! The paper generates ResNet and VGG data-parallel training traffic with
//! Astra-sim, using the ring algorithm for all-reduce, and measures training
//! speed as iterations completed in a fixed period. We model each job as an
//! iterative compute + communicate loop:
//!
//! - **communicate**: every worker simultaneously ships
//!   `2 * G * (W-1) / W` gradient bytes to its ring successor (the exact
//!   per-worker volume of ring all-reduce over `W` workers for a gradient of
//!   `G` bytes); the phase ends when all `W` transfers complete (ring
//!   all-reduce is synchronous);
//! - **compute**: a fixed GPU time before the next iteration's
//!   communication.
//!
//! Interleaving the communication phases of different models via priorities
//! is exactly what the paper's virtual-priority assignment exploits.

use simcore::Time;

/// One data-parallel training job using ring all-reduce.
#[derive(Clone, Debug)]
pub struct RingJob {
    /// Job name (e.g. "resnet-0").
    pub name: String,
    /// Host indices of the workers, in ring order.
    pub workers: Vec<usize>,
    /// Gradient size `G` in bytes (full model gradient per iteration).
    pub gradient_bytes: u64,
    /// Compute time between communication phases.
    pub compute: Time,
    /// Virtual/physical priority assigned to this job's traffic.
    pub prio: u8,
}

impl RingJob {
    /// Per-worker bytes shipped to the ring successor per iteration:
    /// `2 * G * (W-1) / W` (reduce-scatter + all-gather).
    pub fn bytes_per_worker(&self) -> u64 {
        let w = self.workers.len() as u64;
        assert!(w >= 2, "ring needs at least 2 workers");
        2 * self.gradient_bytes * (w - 1) / w
    }

    /// The `(src, dst)` host pairs of one communication phase.
    pub fn ring_pairs(&self) -> Vec<(usize, usize)> {
        let w = self.workers.len();
        (0..w)
            .map(|i| (self.workers[i], self.workers[(i + 1) % w]))
            .collect()
    }

    /// A ResNet-50-class job: ≈ 25.6 M parameters → ≈ 102 MB of fp32
    /// gradients; ~180 ms/iteration compute on the paper-era GPUs, scaled
    /// by `scale` for reduced-size runs.
    pub fn resnet(name: impl Into<String>, workers: Vec<usize>, prio: u8, scale: f64) -> Self {
        RingJob {
            name: name.into(),
            workers,
            gradient_bytes: (102_000_000.0 * scale) as u64,
            compute: Time::from_ms(6).scale_f64(scale),
            prio,
        }
    }

    /// A VGG-16-class job: ≈ 138 M parameters → ≈ 552 MB of gradients;
    /// communication-dominated.
    pub fn vgg(name: impl Into<String>, workers: Vec<usize>, prio: u8, scale: f64) -> Self {
        RingJob {
            name: name.into(),
            workers,
            gradient_bytes: (552_000_000.0 * scale) as u64,
            compute: Time::from_ms(4).scale_f64(scale),
            prio,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_volume_formula() {
        let j = RingJob {
            name: "t".into(),
            workers: vec![0, 1, 2, 3],
            gradient_bytes: 1_000_000,
            compute: Time::from_ms(1),
            prio: 0,
        };
        // 2 * 1MB * 3/4 = 1.5 MB per worker.
        assert_eq!(j.bytes_per_worker(), 1_500_000);
    }

    #[test]
    fn ring_pairs_form_a_single_cycle() {
        let j = RingJob {
            name: "t".into(),
            workers: vec![5, 9, 2],
            gradient_bytes: 1,
            compute: Time::ZERO,
            prio: 0,
        };
        let pairs = j.ring_pairs();
        assert_eq!(pairs, vec![(5, 9), (9, 2), (2, 5)]);
        // Each worker appears exactly once as src and once as dst.
        let srcs: std::collections::BTreeSet<_> = pairs.iter().map(|p| p.0).collect();
        let dsts: std::collections::BTreeSet<_> = pairs.iter().map(|p| p.1).collect();
        assert_eq!(srcs.len(), 3);
        assert_eq!(dsts.len(), 3);
    }

    #[test]
    fn vgg_is_communication_heavier_than_resnet() {
        let r = RingJob::resnet("r", vec![0, 1, 2], 0, 1.0);
        let v = RingJob::vgg("v", vec![0, 1, 2], 0, 1.0);
        assert!(v.gradient_bytes > 4 * r.gradient_bytes);
    }

    #[test]
    #[should_panic(expected = "at least 2 workers")]
    fn single_worker_rejected() {
        RingJob::resnet("r", vec![0], 0, 1.0).bytes_per_worker();
    }
}
