//! Open-loop background-traffic specs for the hybrid packet/fluid model.
//!
//! A [`BackgroundSpec`] samples a Poisson open-loop arrival trace for each
//! bottleneck port at a target utilization, drawing flow sizes from any
//! [`SizeDist`] (e.g. WebSearch). The trace is a plain `(start, bytes)`
//! list so the same arrivals can be fed both to `netsim`'s fluid solver
//! (hybrid run) and to packet-level blast senders (the reference run a
//! hybrid result is validated against) — the ≤5 % foreground-FCT
//! acceptance comparison depends on both modes seeing identical arrivals.

use simcore::time::PS_PER_SEC;
use simcore::{Rate, SimRng, Time};

use crate::websearch::SizeDist;

/// Poisson open-loop background-traffic spec for one or more bottleneck
/// ports.
#[derive(Clone, Debug)]
pub struct BackgroundSpec {
    /// Flow-size distribution.
    pub dist: SizeDist,
    /// Target utilization of each loaded port's line rate (0..1).
    pub load: f64,
    /// Root seed; each port gets an independent split stream.
    pub seed: u64,
}

impl BackgroundSpec {
    /// New spec at `load` utilization with sizes from `dist`.
    pub fn new(dist: SizeDist, load: f64, seed: u64) -> Self {
        assert!((0.0..1.0).contains(&load), "background load must be in [0,1)");
        BackgroundSpec { dist, load, seed }
    }

    /// Sample the arrival trace for one port: `(start, bytes)` pairs,
    /// sorted by start, with arrival rate `line · load / mean(dist)`
    /// flows/sec until `until`. `port_index` selects the per-port RNG
    /// stream, so adding ports never perturbs existing traces.
    pub fn sample_port(&self, port_index: u64, line: Rate, until: Time) -> Vec<(Time, u64)> {
        let mut out = Vec::new();
        if self.load == 0.0 {
            return out;
        }
        let mut rng = SimRng::new(self.seed).split(port_index);
        let lambda = line.as_bps() as f64 / 8.0 * self.load / self.dist.mean();
        let mean_gap_ps = PS_PER_SEC as f64 / lambda;
        let mut t = Time::ZERO;
        loop {
            let gap = rng.exponential(mean_gap_ps);
            t += Time::from_ps_f64(gap);
            if t >= until {
                break;
            }
            out.push((t, self.dist.sample(&mut rng).max(1)));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_is_deterministic_per_seed_and_port() {
        let spec = BackgroundSpec::new(SizeDist::websearch(), 0.5, 7);
        let a = spec.sample_port(0, Rate::from_gbps(100), Time::from_ms(10));
        let b = spec.sample_port(0, Rate::from_gbps(100), Time::from_ms(10));
        assert_eq!(a, b);
        let other_port = spec.sample_port(1, Rate::from_gbps(100), Time::from_ms(10));
        assert_ne!(a, other_port, "ports must get independent streams");
    }

    #[test]
    fn trace_hits_target_load() {
        let spec = BackgroundSpec::new(SizeDist::websearch(), 0.5, 11);
        let until = Time::from_ms(200);
        let line = Rate::from_gbps(100);
        let trace = spec.sample_port(0, line, until);
        let bytes: u64 = trace.iter().map(|&(_, b)| b).sum();
        let offered = bytes as f64 * 8.0 / until.as_secs_f64();
        let target = line.as_bps() as f64 * 0.5;
        assert!(
            (offered / target - 1.0).abs() < 0.15,
            "offered {offered:.3e} bps vs target {target:.3e} bps"
        );
    }

    #[test]
    fn trace_is_sorted_and_zero_load_is_empty() {
        let spec = BackgroundSpec::new(SizeDist::websearch(), 0.3, 3);
        let trace = spec.sample_port(0, Rate::from_gbps(10), Time::from_ms(20));
        assert!(trace.windows(2).all(|w| w[0].0 <= w[1].0));
        let empty = BackgroundSpec::new(SizeDist::websearch(), 0.0, 3)
            .sample_port(0, Rate::from_gbps(10), Time::from_ms(20));
        assert!(empty.is_empty());
    }
}
