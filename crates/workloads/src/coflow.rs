//! Coflow and file-request traffic (the coflow-scheduling scenario, §6.2).
//!
//! The paper drives this scenario with coflows from the Facebook Hadoop
//! trace plus "file request" incast traffic (20 random senders → 1 random
//! receiver) at a 1:1 load ratio. The trace itself is not redistributable,
//! so we generate synthetic coflows matched to its published
//! characterization (Chowdhury & Stoica, "Efficient Coflow Scheduling
//! Without Prior Knowledge"): four canonical categories by width × length
//! with heavy-tailed sizes — most coflows are narrow and short, most
//! *bytes* belong to wide, long coflows.

use simcore::{Rate, SimRng, Time};

use crate::websearch::FlowArrival;

/// One coflow: a set of flows that complete together (CCT = max flow FCT).
#[derive(Clone, Debug)]
pub struct Coflow {
    /// Coflow id (also used as the flow tag).
    pub id: u64,
    /// Arrival time.
    pub start: Time,
    /// Member flows (src/dst are host indices).
    pub flows: Vec<FlowArrival>,
}

impl Coflow {
    /// Total bytes across member flows.
    pub fn total_bytes(&self) -> u64 {
        self.flows.iter().map(|f| f.size).sum()
    }

    /// Width (number of member flows).
    pub fn width(&self) -> usize {
        self.flows.len()
    }
}

/// Synthetic coflow generator matched to the Facebook Hadoop trace shape.
///
/// Categories (fractions from the published characterization):
/// - **SN** short & narrow: ~52 % of coflows, ≤ 4 flows, ≤ 1 MB per flow;
/// - **LN** long & narrow: ~16 %, ≤ 4 flows, heavy flows (1–50 MB);
/// - **SW** short & wide: ~15 %, many flows, small each;
/// - **LW** long & wide: ~17 %, many flows, heavy each (dominates bytes).
#[derive(Clone, Debug)]
pub struct CoflowGen {
    hosts: usize,
    rng: SimRng,
    next_id: u64,
}

impl CoflowGen {
    /// Generator over `hosts` hosts.
    pub fn new(hosts: usize, seed: u64) -> Self {
        assert!(hosts >= 4);
        CoflowGen {
            hosts,
            rng: SimRng::new(seed),
            next_id: 0,
        }
    }

    fn pick_pair(&mut self) -> (usize, usize) {
        let src = self.rng.choose_index(self.hosts);
        let mut dst = self.rng.choose_index(self.hosts - 1);
        if dst >= src {
            dst += 1;
        }
        (src, dst)
    }

    /// Generate one coflow arriving at `start`.
    pub fn next_coflow(&mut self, start: Time) -> Coflow {
        let id = self.next_id;
        self.next_id += 1;
        let u = self.rng.f64();
        // (width range, per-flow size range) by category. Flow sizes are
        // MB-scale even for "short" coflows, matching the paper's remark
        // that coflow-scenario flows "are almost middle and large flows".
        let (wlo, whi, slo, shi) = if u < 0.52 {
            (1u64, 4, 200_000u64, 4_000_000) // short-narrow
        } else if u < 0.68 {
            (1, 4, 4_000_000, 40_000_000) // long-narrow
        } else if u < 0.83 {
            (5, 12, 100_000, 1_000_000) // short-wide
        } else {
            (5, 12, 2_000_000, 20_000_000) // long-wide
        };
        let width = (wlo + self.rng.below(whi - wlo + 1)) as usize;
        let width = width.min(self.hosts / 2);
        let mut flows = Vec::with_capacity(width);
        for _ in 0..width.max(1) {
            let (src, dst) = self.pick_pair();
            // Log-uniform per-flow size inside the category band.
            let ln = self.rng.range_f64((slo as f64).ln(), (shi as f64).ln());
            flows.push(FlowArrival {
                start,
                size: ln.exp() as u64,
                src,
                dst,
            });
        }
        Coflow { id, start, flows }
    }

    /// Expected bytes of one coflow (Monte-Carlo constant used for load
    /// calibration).
    pub fn mean_coflow_bytes() -> f64 {
        // Deterministic estimate with a fixed seed.
        let mut g = CoflowGen::new(64, 0xC0F10);
        let n = 20_000;
        let total: f64 = (0..n)
            .map(|_| g.next_coflow(Time::ZERO).total_bytes() as f64)
            // simlint::allow(float-order, fixed-seed Monte-Carlo constant over a fixed 0..n range; order can never change)
            .sum();
        total / n as f64
    }

    /// Generate Poisson coflow arrivals so that coflow traffic offers
    /// `load` fraction of the aggregate capacity of `hosts * host_rate`
    /// until `until`.
    pub fn generate_poisson(&mut self, host_rate: Rate, load: f64, until: Time) -> Vec<Coflow> {
        let mean_bytes = Self::mean_coflow_bytes();
        let agg = host_rate.as_bps() as f64 / 8.0 * self.hosts as f64;
        let per_sec = agg * load / mean_bytes;
        let mean_gap_ps = 1e12 / per_sec;
        let mut out = Vec::new();
        let mut t = Time::ZERO;
        loop {
            let gap = self.rng.exponential(mean_gap_ps);
            t += Time::from_ps(gap as u64);
            if t >= until {
                break;
            }
            out.push(self.next_coflow(t));
        }
        out
    }

    /// Generate file-request incast arrivals: each request makes `fanin`
    /// random senders each ship `piece_bytes` to one random receiver
    /// (§6.2: "20 random nodes send a piece of data to a randomly selected
    /// node"). Poisson arrivals calibrated to `load`.
    pub fn generate_file_requests(
        &mut self,
        host_rate: Rate,
        load: f64,
        fanin: usize,
        piece_bytes: u64,
        until: Time,
    ) -> Vec<Coflow> {
        let req_bytes = (fanin as u64 * piece_bytes) as f64;
        let agg = host_rate.as_bps() as f64 / 8.0 * self.hosts as f64;
        let per_sec = agg * load / req_bytes;
        let mean_gap_ps = 1e12 / per_sec;
        let mut out = Vec::new();
        let mut t = Time::ZERO;
        loop {
            let gap = self.rng.exponential(mean_gap_ps);
            t += Time::from_ps(gap as u64);
            if t >= until {
                break;
            }
            let id = self.next_id;
            self.next_id += 1;
            let dst = self.rng.choose_index(self.hosts);
            let mut flows = Vec::with_capacity(fanin);
            let mut used = std::collections::BTreeSet::new();
            used.insert(dst);
            while flows.len() < fanin.min(self.hosts - 1) {
                let src = self.rng.choose_index(self.hosts);
                if !used.insert(src) {
                    continue;
                }
                flows.push(FlowArrival {
                    start: t,
                    size: piece_bytes,
                    src,
                    dst,
                });
            }
            out.push(Coflow {
                id,
                start: t,
                flows,
            });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coflows_are_heavy_tailed() {
        let mut g = CoflowGen::new(64, 1);
        let sizes: Vec<u64> = (0..5_000)
            .map(|_| g.next_coflow(Time::ZERO).total_bytes())
            .collect();
        let mut sorted = sizes.clone();
        sorted.sort_unstable();
        let total: u64 = sorted.iter().sum();
        // Top 20% of coflows must carry the majority of bytes.
        let top20: u64 = sorted[sorted.len() * 4 / 5..].iter().sum();
        assert!(
            top20 as f64 / total as f64 > 0.6,
            "top-20% byte share {}",
            top20 as f64 / total as f64
        );
    }

    #[test]
    fn widths_and_sizes_within_bands() {
        let mut g = CoflowGen::new(64, 2);
        for _ in 0..2_000 {
            let c = g.next_coflow(Time::ZERO);
            assert!((1..=12).contains(&c.width()));
            for f in &c.flows {
                assert!(f.size >= 100_000 && f.size <= 40_000_000);
                assert_ne!(f.src, f.dst);
            }
        }
    }

    #[test]
    fn poisson_coflow_load_calibrated() {
        let mut g = CoflowGen::new(32, 3);
        let until = Time::from_ms(200);
        let coflows = g.generate_poisson(Rate::from_gbps(10), 0.4, until);
        let bytes: f64 = coflows.iter().map(|c| c.total_bytes() as f64).sum();
        let load = bytes * 8.0 / until.as_secs_f64() / (32.0 * 10e9);
        assert!((load - 0.4).abs() < 0.1, "load {load}");
    }

    #[test]
    fn file_requests_have_distinct_senders() {
        let mut g = CoflowGen::new(64, 4);
        let reqs =
            g.generate_file_requests(Rate::from_gbps(10), 0.3, 20, 100_000, Time::from_ms(50));
        assert!(!reqs.is_empty());
        for r in &reqs {
            assert_eq!(r.width(), 20);
            let dst = r.flows[0].dst;
            let mut senders = std::collections::BTreeSet::new();
            for f in &r.flows {
                assert_eq!(f.dst, dst);
                assert_ne!(f.src, dst);
                assert!(senders.insert(f.src), "duplicate sender");
            }
        }
    }

    #[test]
    fn ids_are_unique_across_kinds() {
        let mut g = CoflowGen::new(16, 5);
        let a = g.generate_poisson(Rate::from_gbps(10), 0.2, Time::from_ms(10));
        let b = g.generate_file_requests(Rate::from_gbps(10), 0.2, 4, 50_000, Time::from_ms(10));
        let mut ids = std::collections::BTreeSet::new();
        for c in a.iter().chain(b.iter()) {
            assert!(ids.insert(c.id));
        }
    }
}
