//! Seed-driven link-outage plans for fault-regime experiments.
//!
//! A [`FaultPlanSpec`] samples an alternating-renewal outage process per
//! link: exponentially distributed up-holds (mean `mean_up`, the MTBF)
//! followed by exponentially distributed down-holds (mean `mean_down`,
//! the MTTR). The plan is a plain sorted `(down_at, up_at)` window list —
//! the experiment harness turns it into `netsim` fault-schedule
//! transitions — so the same outage trace can drive any simulator
//! configuration, and adding links never perturbs the windows of
//! existing ones (each link draws from an independent split stream).

use simcore::{SimRng, Time};

/// Alternating up/down outage plan for a set of links.
#[derive(Clone, Debug)]
pub struct FaultPlanSpec {
    /// Mean up-hold (MTBF) between outages.
    pub mean_up: Time,
    /// Mean outage duration (MTTR).
    pub mean_down: Time,
    /// Root seed; each link gets an independent split stream.
    pub seed: u64,
}

impl FaultPlanSpec {
    /// New plan with the given mean up/down holds.
    pub fn new(mean_up: Time, mean_down: Time, seed: u64) -> Self {
        assert!(mean_up > Time::ZERO, "mean up-hold must be positive");
        assert!(mean_down > Time::ZERO, "mean outage must be positive");
        FaultPlanSpec {
            mean_up,
            mean_down,
            seed,
        }
    }

    /// Sample the outage windows for one link: sorted, non-overlapping
    /// `(down_at, up_at)` pairs with `down_at < up_at`, starting from an
    /// up-hold at time zero and stopping once a window would open at or
    /// past `until` (a window may *close* past `until`; the run ends
    /// first). `link_index` selects the per-link RNG stream.
    pub fn sample_link(&self, link_index: u64, until: Time) -> Vec<(Time, Time)> {
        let mut out = Vec::new();
        let mut rng = SimRng::new(self.seed).split(link_index);
        let mut t = Time::ZERO;
        loop {
            let up_hold = Time::from_ps_f64(rng.exponential(self.mean_up.as_ps() as f64));
            t += up_hold.max(Time::from_ps(1));
            if t >= until {
                break;
            }
            let down_hold = Time::from_ps_f64(rng.exponential(self.mean_down.as_ps() as f64));
            let up_at = t + down_hold.max(Time::from_ps(1));
            out.push((t, up_at));
            t = up_at;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> FaultPlanSpec {
        FaultPlanSpec::new(Time::from_us(200), Time::from_us(50), 42)
    }

    #[test]
    fn windows_are_deterministic_per_seed_and_link() {
        let s = spec();
        let a = s.sample_link(0, Time::from_ms(10));
        let b = s.sample_link(0, Time::from_ms(10));
        assert_eq!(a, b);
        let other = s.sample_link(1, Time::from_ms(10));
        assert_ne!(a, other, "links must get independent streams");
    }

    #[test]
    fn windows_are_sorted_and_disjoint() {
        let windows = spec().sample_link(3, Time::from_ms(10));
        assert!(!windows.is_empty(), "plan must produce outages");
        let mut prev_up = Time::ZERO;
        for &(down, up) in &windows {
            assert!(down < up, "window must have positive length");
            assert!(down >= prev_up, "windows must not overlap");
            prev_up = up;
        }
    }

    #[test]
    fn availability_approximates_the_renewal_ratio() {
        // Long-run unavailability of an alternating renewal process is
        // MTTR / (MTBF + MTTR) = 50/250 = 20 %.
        let until = Time::from_ms(100);
        let windows = spec().sample_link(0, until);
        let down_ps: u64 = windows
            .iter()
            .map(|&(d, u)| u.min(until).as_ps().saturating_sub(d.as_ps()))
            .sum();
        let frac = down_ps as f64 / until.as_ps() as f64;
        assert!(
            (0.1..0.3).contains(&frac),
            "down fraction {frac:.3} should be near 0.2"
        );
    }
}
