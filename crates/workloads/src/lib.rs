//! Workload generators for the PrioPlus evaluation scenarios.
//!
//! - [`websearch`]: the DCTCP WebSearch flow-size distribution with Poisson
//!   open-loop arrivals at a target load (flow-scheduling scenario, §6.2);
//! - [`background`]: per-port Poisson background-traffic traces for the
//!   hybrid packet/fluid model (same trace drives the fluid solver and the
//!   packet-level reference run);
//! - [`coflow`]: a synthetic coflow generator statistically matched to the
//!   published characterization of the Facebook Hadoop trace, plus the
//!   20-into-1 file-request incast pattern (coflow scenario, §6.2);
//! - [`allreduce`]: ring all-reduce training-job schedules for the ML
//!   cluster scenario (ResNet/VGG data-parallel jobs, §6.2);
//! - [`faults`]: seed-driven link-outage plans (alternating MTBF/MTTR
//!   renewal windows) the harness turns into `netsim` fault schedules;
//! - [`openloop`]: lazy O(1)-state open-loop arrival streams (Poisson +
//!   periodic incast) for the hyperscale scenarios, consumed chunk-by-chunk
//!   through `netsim`'s `ArrivalSource` instead of materialized up front;
//! - [`priomap`]: size-class → priority assignment helpers (smaller flows
//!   get higher priorities, approximating pFabric-style scheduling).
//!
//! Everything is deterministic given a seed; generators emit plain structs
//! the experiment harness turns into `netsim` flows.

#![forbid(unsafe_code)]

#![warn(missing_docs)]

pub mod allreduce;
pub mod background;
pub mod coflow;
pub mod faults;
pub mod openloop;
pub mod priomap;
pub mod websearch;

pub use allreduce::RingJob;
pub use background::BackgroundSpec;
pub use faults::FaultPlanSpec;
pub use coflow::{Coflow, CoflowGen};
pub use openloop::{IncastMix, OpenLoopGen};
pub use priomap::SizeClassifier;
pub use websearch::{FlowArrival, PoissonArrivals, SizeDist, WEBSEARCH_CDF};
