//! Lazy open-loop arrival streams for hyperscale scenarios.
//!
//! [`PoissonArrivals`](crate::websearch::PoissonArrivals) materializes a
//! whole trace up front, which is fine for thousands of flows but not for
//! the hyperscale scenarios that sustain millions of flow lifetimes: the
//! trace alone would dominate memory. [`OpenLoopGen`] is the streaming
//! counterpart — an iterator-style generator holding O(1) state that emits
//! arrivals one at a time in nondecreasing start order, merging
//!
//! - a cluster-wide Poisson process with WebSearch-distributed sizes
//!   (random non-self source/destination pairs), and
//! - an optional periodic incast mix: every period, `fanin` random senders
//!   each ship a fixed-size response to one random victim host.
//!
//! The experiment harness wraps a generator in a `netsim` `ArrivalSource`
//! and registers flows chunk-by-chunk during the run, so resident flow
//! state tracks the look-ahead window rather than the trace length.
//! Everything is deterministic given the seed.

use simcore::{Rate, SimRng, Time};

use crate::websearch::{FlowArrival, SizeDist};

/// Periodic incast component of an open-loop mix.
#[derive(Clone, Copy, Debug)]
pub struct IncastMix {
    /// Gap between consecutive incast bursts.
    pub period: Time,
    /// Senders per burst (each ships one flow to the burst's victim).
    pub fanin: usize,
    /// Response size per sender, bytes.
    pub bytes: u64,
}

/// Streaming open-loop arrival generator; see the module docs.
#[derive(Clone, Debug)]
pub struct OpenLoopGen {
    dist: SizeDist,
    hosts: usize,
    mean_gap_ps: f64,
    rng: SimRng,
    /// Start time of the next Poisson arrival (size/pair not yet drawn).
    next_poisson: Time,
    horizon: Time,
    incast: Option<IncastState>,
}

#[derive(Clone, Debug)]
struct IncastState {
    mix: IncastMix,
    rng: SimRng,
    /// Start time of the burst currently being emitted (or the next one).
    at: Time,
    /// Victim host of the current burst; drawn when `emitted == 0`.
    victim: usize,
    /// Senders already emitted for the current burst.
    emitted: usize,
}

impl OpenLoopGen {
    /// Build a generator over `hosts` hosts with `host_rate` NICs offering
    /// `load` (fraction of aggregate NIC capacity, Poisson component only)
    /// in `[start, horizon)`. The incast mix, when present, rides on top of
    /// that load.
    #[allow(clippy::too_many_arguments)] // scenario constructor: each knob is orthogonal
    pub fn new(
        dist: SizeDist,
        hosts: usize,
        host_rate: Rate,
        load: f64,
        start: Time,
        horizon: Time,
        incast: Option<IncastMix>,
        seed: u64,
    ) -> Self {
        assert!(hosts >= 2, "need at least two hosts");
        assert!(load > 0.0 && load <= 1.5, "unreasonable load {load}");
        assert!(start < horizon, "empty arrival window");
        let agg_bytes_per_sec = host_rate.as_bps() as f64 / 8.0 * hosts as f64;
        let flows_per_sec = agg_bytes_per_sec * load / dist.mean();
        let mean_gap_ps = 1e12 / flows_per_sec;
        let mut rng = SimRng::new(seed);
        // First Poisson arrival: one exponential gap past the window start,
        // so `start` itself carries no deterministic arrival spike.
        let first = start + Time::from_ps(rng.exponential(mean_gap_ps) as u64);
        let incast = incast.map(|mix| {
            assert!(mix.fanin >= 1 && mix.bytes >= 1, "degenerate incast mix");
            assert!(mix.fanin < hosts, "incast fan-in must leave a victim");
            assert!(mix.period > Time::ZERO, "zero incast period");
            IncastState {
                mix,
                rng: SimRng::new(seed).split(0x1C_A57),
                at: start + mix.period,
                victim: 0,
                emitted: 0,
            }
        });
        OpenLoopGen {
            dist,
            hosts,
            mean_gap_ps,
            rng,
            next_poisson: first,
            horizon,
            incast,
        }
    }

    /// Time of the next arrival without consuming it; `None` when the
    /// stream is exhausted.
    pub fn peek_start(&self) -> Option<Time> {
        let p = (self.next_poisson < self.horizon).then_some(self.next_poisson);
        let i = self
            .incast
            .as_ref()
            .filter(|s| s.at < self.horizon)
            .map(|s| s.at);
        match (p, i) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (x, None) | (None, x) => x,
        }
    }

    /// Emit the next arrival in nondecreasing start order, or `None` once
    /// both component streams passed the horizon.
    pub fn next_arrival(&mut self) -> Option<FlowArrival> {
        let poisson_due = self.next_poisson < self.horizon;
        let incast_due = self
            .incast
            .as_ref()
            .is_some_and(|s| s.at < self.horizon && (!poisson_due || s.at <= self.next_poisson));
        if incast_due {
            // simlint::allow(hot-path-unwrap, guarded by the is_some_and one line up)
            let s = self.incast.as_mut().expect("checked");
            if s.emitted == 0 {
                s.victim = s.rng.choose_index(self.hosts);
            }
            let mut src = s.rng.choose_index(self.hosts - 1);
            if src >= s.victim {
                src += 1;
            }
            let a = FlowArrival {
                start: s.at,
                size: s.mix.bytes,
                src,
                dst: s.victim,
            };
            s.emitted += 1;
            if s.emitted == s.mix.fanin {
                s.emitted = 0;
                s.at += s.mix.period;
            }
            return Some(a);
        }
        if !poisson_due {
            return None;
        }
        let start = self.next_poisson;
        let src = self.rng.choose_index(self.hosts);
        let mut dst = self.rng.choose_index(self.hosts - 1);
        if dst >= src {
            dst += 1;
        }
        let size = self.dist.sample(&mut self.rng).max(1);
        let gap = self.rng.exponential(self.mean_gap_ps);
        self.next_poisson = start + Time::from_ps(gap as u64).max(Time::from_ps(1));
        Some(FlowArrival {
            start,
            size,
            src,
            dst,
        })
    }

    /// Emit every arrival with `start < until` (bounded look-ahead chunk).
    pub fn take_until(&mut self, until: Time, out: &mut Vec<FlowArrival>) {
        while self.peek_start().is_some_and(|t| t < until) {
            // simlint::allow(hot-path-unwrap, peek_start guarantees a pending arrival)
            out.push(self.next_arrival().expect("peeked"));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk(incast: Option<IncastMix>, horizon: Time) -> OpenLoopGen {
        OpenLoopGen::new(
            SizeDist::websearch(),
            16,
            Rate::from_gbps(100),
            0.5,
            Time::ZERO,
            horizon,
            incast,
            77,
        )
    }

    #[test]
    fn arrivals_are_sorted_and_exclude_self_loops() {
        let mut g = mk(
            Some(IncastMix {
                period: Time::from_us(200),
                fanin: 8,
                bytes: 20_000,
            }),
            Time::from_ms(5),
        );
        let mut prev = Time::ZERO;
        let mut n = 0;
        while let Some(a) = g.next_arrival() {
            assert!(a.start >= prev, "unsorted at arrival {n}");
            assert_ne!(a.src, a.dst);
            assert!(a.src < 16 && a.dst < 16);
            assert!(a.start < Time::from_ms(5));
            prev = a.start;
            n += 1;
        }
        assert!(n > 100, "only {n} arrivals");
        assert!(g.next_arrival().is_none(), "stream must stay exhausted");
    }

    #[test]
    fn incast_bursts_have_fanin_flows_to_one_victim() {
        let mix = IncastMix {
            period: Time::from_us(500),
            fanin: 6,
            bytes: 30_000,
        };
        let mut g = OpenLoopGen::new(
            SizeDist::websearch(),
            16,
            Rate::from_gbps(100),
            0.01, // near-zero poisson so bursts dominate
            Time::ZERO,
            Time::from_ms(4),
            Some(mix),
            3,
        );
        let mut bursts: std::collections::BTreeMap<u64, Vec<FlowArrival>> = Default::default();
        while let Some(a) = g.next_arrival() {
            if a.size == 30_000 {
                bursts.entry(a.start.as_ps()).or_default().push(a);
            }
        }
        assert_eq!(bursts.len(), 7, "one burst per period in [0.5ms, 4ms)");
        for (_, flows) in bursts {
            assert_eq!(flows.len(), 6);
            let victim = flows[0].dst;
            for f in &flows {
                assert_eq!(f.dst, victim);
                assert_ne!(f.src, victim);
            }
        }
    }

    #[test]
    fn lazy_stream_matches_chunked_take_until() {
        let mix = Some(IncastMix {
            period: Time::from_us(300),
            fanin: 4,
            bytes: 10_000,
        });
        let mut all = Vec::new();
        let mut g = mk(mix, Time::from_ms(3));
        while let Some(a) = g.next_arrival() {
            all.push(a);
        }
        let mut chunked = Vec::new();
        let mut g = mk(mix, Time::from_ms(3));
        let mut until = Time::from_us(137);
        loop {
            let before = chunked.len();
            g.take_until(until, &mut chunked);
            if g.peek_start().is_none() {
                break;
            }
            let _ = before;
            until += Time::from_us(137);
        }
        assert_eq!(all, chunked);
    }

    #[test]
    fn poisson_load_is_calibrated() {
        let horizon = Time::from_ms(40);
        let mut g = mk(None, horizon);
        let mut bytes = 0u64;
        while let Some(a) = g.next_arrival() {
            bytes += a.size;
        }
        let offered = bytes as f64 * 8.0 / horizon.as_secs_f64();
        let capacity = 16.0 * 100e9;
        let load = offered / capacity;
        assert!((load - 0.5).abs() < 0.05, "offered load {load}");
    }

    #[test]
    fn deterministic_per_seed() {
        let run = || {
            let mut g = mk(
                Some(IncastMix {
                    period: Time::from_us(250),
                    fanin: 3,
                    bytes: 5_000,
                }),
                Time::from_ms(2),
            );
            let mut v = Vec::new();
            while let Some(a) = g.next_arrival() {
                v.push(a);
            }
            v
        };
        assert_eq!(run(), run());
    }
}
