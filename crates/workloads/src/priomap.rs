//! Size-class → priority mapping.
//!
//! The evaluation approximates priority-based flow scheduling algorithms
//! (pFabric/PIAS-style) by grouping flows into `n` classes by size and
//! assigning *smaller* classes *higher* priorities (§6.2). The same mapping
//! is used for coflows (by total coflow size).

use crate::websearch::SizeDist;

/// Maps sizes to priority levels using equal-probability quantile bounds of
/// a size distribution.
#[derive(Clone, Debug)]
pub struct SizeClassifier {
    bounds: Vec<u64>,
    num_prios: u8,
}

impl SizeClassifier {
    /// Classifier with `num_prios` classes split at the distribution's
    /// quantiles.
    pub fn from_dist(dist: &SizeDist, num_prios: u8) -> Self {
        assert!(num_prios >= 1);
        SizeClassifier {
            bounds: dist.quantile_bounds(num_prios as usize),
            num_prios,
        }
    }

    /// Classifier with explicit ascending boundaries; `bounds.len() + 1`
    /// classes.
    pub fn from_bounds(bounds: Vec<u64>) -> Self {
        for w in bounds.windows(2) {
            assert!(w[0] < w[1], "bounds must ascend");
        }
        let num_prios = bounds.len() as u8 + 1;
        SizeClassifier { bounds, num_prios }
    }

    /// Number of priority classes.
    pub fn num_prios(&self) -> u8 {
        self.num_prios
    }

    /// Priority for a flow of `size` bytes: the smallest class gets the
    /// *highest* priority `num_prios - 1`, the largest gets 0.
    pub fn priority(&self, size: u64) -> u8 {
        let class = self
            .bounds
            .iter()
            .position(|&b| size <= b)
            .unwrap_or(self.bounds.len());
        self.num_prios - 1 - class as u8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smaller_flows_get_higher_priority() {
        let c = SizeClassifier::from_bounds(vec![10_000, 100_000, 1_000_000]);
        assert_eq!(c.num_prios(), 4);
        assert_eq!(c.priority(1_000), 3);
        assert_eq!(c.priority(10_000), 3);
        assert_eq!(c.priority(10_001), 2);
        assert_eq!(c.priority(500_000), 1);
        assert_eq!(c.priority(50_000_000), 0);
    }

    #[test]
    fn single_class_is_priority_zero() {
        let c = SizeClassifier::from_bounds(vec![]);
        assert_eq!(c.num_prios(), 1);
        assert_eq!(c.priority(123), 0);
    }

    #[test]
    fn dist_classifier_covers_all_priorities() {
        let d = SizeDist::websearch();
        let c = SizeClassifier::from_dist(&d, 8);
        let mut seen = std::collections::BTreeSet::new();
        let mut rng = simcore::SimRng::new(3);
        for _ in 0..10_000 {
            seen.insert(c.priority(d.sample(&mut rng)));
        }
        assert_eq!(seen.len(), 8);
    }

    #[test]
    #[should_panic(expected = "ascend")]
    fn rejects_unsorted_bounds() {
        SizeClassifier::from_bounds(vec![100, 50]);
    }
}
