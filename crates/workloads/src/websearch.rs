//! Flow-size distributions and Poisson arrival processes.
//!
//! The flow-scheduling scenario uses the WebSearch workload (DCTCP's
//! production web-search trace), the standard heavy-tailed distribution of
//! datacenter transport papers, sampled from its published CDF by inverse
//! transform with log-linear interpolation between knots.

use simcore::{Rate, SimRng, Time};

/// `(size_bytes, cumulative_probability)` CDF knots of the WebSearch
/// workload (DCTCP, SIGCOMM '10; the same table shipped with the HPCC
/// artifacts). Mean ≈ 1.6 MB; >95 % of *bytes* come from flows over 1 MB
/// while >80 % of *flows* are under 1 MB.
pub const WEBSEARCH_CDF: &[(u64, f64)] = &[
    (6_000, 0.0),
    (10_000, 0.15),
    (20_000, 0.20),
    (30_000, 0.30),
    (50_000, 0.40),
    (80_000, 0.53),
    (200_000, 0.60),
    (1_000_000, 0.70),
    (2_000_000, 0.80),
    (5_000_000, 0.90),
    (10_000_000, 0.97),
    (30_000_000, 1.00),
];

/// A piecewise-linear flow-size distribution defined by CDF knots.
#[derive(Clone, Debug)]
pub struct SizeDist {
    knots: Vec<(u64, f64)>,
}

impl SizeDist {
    /// Build from CDF knots (must start at probability 0, end at 1, and be
    /// strictly increasing in both coordinates).
    pub fn new(knots: &[(u64, f64)]) -> Self {
        assert!(knots.len() >= 2, "need at least two knots");
        assert_eq!(knots[0].1, 0.0, "CDF must start at 0");
        assert_eq!(knots[knots.len() - 1].1, 1.0, "CDF must end at 1");
        for w in knots.windows(2) {
            assert!(w[0].0 < w[1].0 && w[0].1 <= w[1].1, "non-monotone CDF");
        }
        SizeDist {
            knots: knots.to_vec(),
        }
    }

    /// The WebSearch distribution.
    pub fn websearch() -> Self {
        SizeDist::new(WEBSEARCH_CDF)
    }

    /// Analytic mean of the piecewise-linear distribution, bytes.
    pub fn mean(&self) -> f64 {
        let mut m = 0.0;
        for w in self.knots.windows(2) {
            let p = w[1].1 - w[0].1;
            m += p * (w[0].0 + w[1].0) as f64 / 2.0;
        }
        m
    }

    /// Inverse-transform sample.
    pub fn sample(&self, rng: &mut SimRng) -> u64 {
        let u = rng.f64();
        for w in self.knots.windows(2) {
            if u <= w[1].1 {
                let span = w[1].1 - w[0].1;
                let frac = if span <= 0.0 {
                    0.0
                } else {
                    (u - w[0].1) / span
                };
                let lo = w[0].0 as f64;
                let hi = w[1].0 as f64;
                return (lo + frac * (hi - lo)).round() as u64;
            }
        }
        self.knots[self.knots.len() - 1].0
    }

    /// Size boundaries that split the distribution into `n` equal-probability
    /// groups (used to map flows to priorities by size, §6.2). Returns `n-1`
    /// ascending boundaries; group `g` = sizes in
    /// `(bound[g-1], bound[g]]`.
    pub fn quantile_bounds(&self, n: usize) -> Vec<u64> {
        assert!(n >= 1);
        (1..n).map(|i| self.quantile(i as f64 / n as f64)).collect()
    }

    /// The `q`-quantile size.
    pub fn quantile(&self, q: f64) -> u64 {
        let q = q.clamp(0.0, 1.0);
        for w in self.knots.windows(2) {
            if q <= w[1].1 {
                let span = w[1].1 - w[0].1;
                let frac = if span <= 0.0 {
                    0.0
                } else {
                    (q - w[0].1) / span
                };
                return (w[0].0 as f64 + frac * (w[1].0 - w[0].0) as f64).round() as u64;
            }
        }
        self.knots[self.knots.len() - 1].0
    }
}

/// One generated flow arrival.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FlowArrival {
    /// Start time.
    pub start: Time,
    /// Payload size in bytes.
    pub size: u64,
    /// Source host index (into the caller's host list).
    pub src: usize,
    /// Destination host index (`!= src`).
    pub dst: usize,
}

/// Open-loop Poisson flow arrivals over a host set at a target load.
///
/// Load is defined edge-normalized, as in the evaluation: a load of 0.7
/// means the expected offered traffic equals 70 % of the aggregate host
/// NIC capacity (each flow consumes capacity at both its source and its
/// destination edge, hence the factor-of-one accounting on sources).
#[derive(Clone, Debug)]
pub struct PoissonArrivals {
    dist: SizeDist,
    hosts: usize,
    /// Mean inter-arrival time across the whole cluster.
    mean_gap: Time,
    rng: SimRng,
    next: Time,
}

impl PoissonArrivals {
    /// Build a generator: `hosts` hosts with `host_rate` NICs at `load`
    /// (fraction of aggregate capacity), starting at `start`.
    pub fn new(
        dist: SizeDist,
        hosts: usize,
        host_rate: Rate,
        load: f64,
        start: Time,
        seed: u64,
    ) -> Self {
        assert!(hosts >= 2, "need at least two hosts");
        assert!(load > 0.0 && load <= 1.5, "unreasonable load {load}");
        let agg_bytes_per_sec = host_rate.as_bps() as f64 / 8.0 * hosts as f64;
        let flows_per_sec = agg_bytes_per_sec * load / dist.mean();
        let mean_gap = Time::from_ps((1e12 / flows_per_sec) as u64);
        PoissonArrivals {
            dist,
            hosts,
            mean_gap,
            rng: SimRng::new(seed),
            next: start,
        }
    }

    /// Generate all arrivals up to `until`.
    pub fn generate_until(&mut self, until: Time) -> Vec<FlowArrival> {
        let mut out = Vec::new();
        while self.next < until {
            let gap = self.rng.exponential(self.mean_gap.as_ps() as f64);
            self.next += Time::from_ps(gap as u64);
            if self.next >= until {
                break;
            }
            let src = self.rng.choose_index(self.hosts);
            let mut dst = self.rng.choose_index(self.hosts - 1);
            if dst >= src {
                dst += 1;
            }
            out.push(FlowArrival {
                start: self.next,
                size: self.dist.sample(&mut self.rng).max(1),
                src,
                dst,
            });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn websearch_mean_is_about_1_6mb() {
        let d = SizeDist::websearch();
        let m = d.mean();
        assert!((1.2e6..2.2e6).contains(&m), "mean {m}");
    }

    #[test]
    fn sample_mean_matches_analytic_mean() {
        let d = SizeDist::websearch();
        let mut rng = SimRng::new(5);
        let n = 200_000;
        let sum: f64 = (0..n).map(|_| d.sample(&mut rng) as f64).sum();
        let sample_mean = sum / n as f64;
        let err = (sample_mean - d.mean()).abs() / d.mean();
        assert!(err < 0.02, "sample mean off by {err}");
    }

    #[test]
    fn samples_within_support() {
        let d = SizeDist::websearch();
        let mut rng = SimRng::new(6);
        for _ in 0..10_000 {
            let s = d.sample(&mut rng);
            assert!((6_000..=30_000_000).contains(&s));
        }
    }

    #[test]
    fn quantiles_are_monotone_and_split_mass() {
        let d = SizeDist::websearch();
        let b = d.quantile_bounds(8);
        assert_eq!(b.len(), 7);
        for w in b.windows(2) {
            assert!(w[0] < w[1]);
        }
        // Empirically, each group gets ~1/8 of flows.
        let mut rng = SimRng::new(7);
        let mut counts = [0usize; 8];
        let n = 80_000;
        for _ in 0..n {
            let s = d.sample(&mut rng);
            let g = b.iter().position(|&x| s <= x).unwrap_or(7);
            counts[g] += 1;
        }
        for (g, &c) in counts.iter().enumerate() {
            let frac = c as f64 / n as f64;
            assert!((frac - 0.125).abs() < 0.02, "group {g}: {frac}");
        }
    }

    #[test]
    fn poisson_load_is_calibrated() {
        let d = SizeDist::websearch();
        let mean = d.mean();
        let mut gen = PoissonArrivals::new(d, 16, Rate::from_gbps(100), 0.7, Time::ZERO, 11);
        let horizon = Time::from_ms(50);
        let arrivals = gen.generate_until(horizon);
        let bytes: f64 = arrivals.iter().map(|a| a.size as f64).sum();
        let offered = bytes * 8.0 / horizon.as_secs_f64();
        let capacity = 16.0 * 100e9;
        let load = offered / capacity;
        assert!((load - 0.7).abs() < 0.05, "offered load {load}");
        let _ = mean;
    }

    #[test]
    fn arrivals_are_sorted_and_self_loops_excluded() {
        let mut gen = PoissonArrivals::new(
            SizeDist::websearch(),
            4,
            Rate::from_gbps(100),
            0.5,
            Time::from_us(100),
            13,
        );
        let arrivals = gen.generate_until(Time::from_ms(5));
        assert!(!arrivals.is_empty());
        for w in arrivals.windows(2) {
            assert!(w[0].start <= w[1].start);
        }
        for a in &arrivals {
            assert_ne!(a.src, a.dst);
            assert!(a.start >= Time::from_us(100));
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let mk = || {
            PoissonArrivals::new(
                SizeDist::websearch(),
                8,
                Rate::from_gbps(100),
                0.3,
                Time::ZERO,
                42,
            )
            .generate_until(Time::from_ms(2))
        };
        assert_eq!(mk(), mk());
    }

    #[test]
    #[should_panic(expected = "non-monotone")]
    fn rejects_bad_cdf() {
        SizeDist::new(&[(100, 0.0), (50, 1.0)]);
    }
}
