//! Coflow scheduling with virtual priorities (the paper's §6.2 scenario at
//! demo scale): Facebook-like coflows plus file-request incasts on a
//! leaf–spine fabric, eight priority groups by coflow size, comparing
//! PrioPlus+Swift against the no-priority Swift baseline.
//!
//! Run with: `cargo run --release --example coflow_scheduling`

use experiments::coflowsched::{self, mean_speedup, CoflowConfig};
use experiments::Scheme;
use simcore::Time;

fn main() {
    let mut base_cfg = CoflowConfig::new(Scheme::BaselineSwift, 0.5);
    base_cfg.duration = Time::from_ms(4);
    let mut pp_cfg = CoflowConfig::new(Scheme::PrioPlusSwift, 0.5);
    pp_cfg.duration = Time::from_ms(4);

    println!("running baseline (Swift, no priorities)...");
    let base = coflowsched::run(&base_cfg);
    println!("running PrioPlus+Swift (8 virtual priorities, 1 queue)...");
    let pp = coflowsched::run(&pp_cfg);

    println!(
        "\ncoflows: {} | completion: baseline {:.0}%, prioplus {:.0}%",
        base.coflows.len(),
        base.completion * 100.0,
        pp.completion * 100.0
    );

    println!("\nCCT speedup of PrioPlus vs baseline (ratio > 1 = faster):");
    for (label, lo, hi) in [
        ("high priorities (4-7, small coflows)", 4u8, 7u8),
        ("low priorities  (0-3, large coflows)", 0, 3),
        ("overall", 0, 7),
    ] {
        let s = mean_speedup(&pp, &base, |c| c.class >= lo && c.class <= hi);
        println!(
            "  {label}: {}",
            s.map(|v| format!("{v:.2}x")).unwrap_or("n/a".into())
        );
    }
}
