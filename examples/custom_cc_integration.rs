//! Integrating PrioPlus with your own congestion controller.
//!
//! The paper integrates PrioPlus with Swift (79 LoC in DPDK) and LEDBAT.
//! This example shows the Rust equivalent: implement [`prioplus::DelayCc`]
//! for a custom delay-based CC (here, a bare-bones AIMD controller) and it
//! immediately gains virtual-priority capability through
//! [`transport::PrioPlusTransport`].
//!
//! Run with: `cargo run --release --example custom_cc_integration`

use experiments::micro::{Micro, MicroEnv};
use netsim::{FlowSpec, Transport};
use prioplus::{DelayCc, PrioPlusConfig};
use simcore::Time;
use transport::pp_transport::PrioPlusTransport;
use transport::sender::SenderBase;
use transport::PrioPlusPolicy;

/// A deliberately minimal delay-targeting AIMD controller — stand-in for
/// "your CC here". `Clone` is required so the wrapping transport can
/// implement [`Transport::clone_box`] for simulation snapshots.
#[derive(Clone)]
struct MyCc {
    cwnd: f64,
    ai: f64,
    ai_origin: f64,
    target: Time,
    last_cut: Time,
}

impl MyCc {
    fn new(target: Time, init_cwnd: f64) -> Self {
        MyCc {
            cwnd: init_cwnd,
            ai: 1_000.0,
            ai_origin: 1_000.0,
            target,
            last_cut: Time::ZERO,
        }
    }
}

impl DelayCc for MyCc {
    fn on_ack(&mut self, delay: Time, acked_bytes: u32, now: Time) {
        if delay < self.target {
            self.cwnd += self.ai * acked_bytes as f64 / self.cwnd.max(1_000.0);
        } else if now.saturating_sub(self.last_cut) >= self.target {
            self.cwnd *= 0.7;
            self.last_cut = now;
        }
        self.cwnd = self.cwnd.clamp(150.0, 10_000_000.0);
    }
    fn cwnd(&self) -> f64 {
        self.cwnd
    }
    fn set_cwnd(&mut self, bytes: f64) {
        self.cwnd = bytes.clamp(150.0, 10_000_000.0);
    }
    fn ai(&self) -> f64 {
        self.ai
    }
    fn set_ai(&mut self, v: f64) {
        self.ai = v.max(0.0);
    }
    fn ai_origin(&self) -> f64 {
        self.ai_origin
    }
    fn target_delay(&self) -> Time {
        self.target
    }
}

fn main() {
    let mut m = Micro::build(&MicroEnv {
        senders: 2,
        end: Time::from_ms(6),
        trace: true,
        ..Default::default()
    });

    // Wire MyCc into PrioPlus manually (what `CcSpec` does for Swift/LEDBAT).
    let policy = PrioPlusPolicy::paper_default(2);
    let add = |m: &mut Micro, sender: u32, size: u64, start: Time, virt: u8| {
        let spec = FlowSpec {
            src: sender,
            dst: 0,
            size,
            start,
            phys_prio: 0,
            virt_prio: virt,
            tag: virt as u64,
        };
        m.sim.add_flow(spec, |params| {
            let pp_cfg: PrioPlusConfig = policy.flow_config(params);
            let cc = MyCc::new(pp_cfg.d_target, pp_cfg.w_ls);
            Box::new(PrioPlusTransport::new(
                SenderBase::new(params.clone()),
                pp_cfg,
                cc,
            )) as Box<dyn Transport>
        })
    };

    let lo = add(&mut m, 1, 40_000_000, Time::ZERO, 0);
    let hi = add(&mut m, 2, 20_000_000, Time::from_ms(1), 1);
    let res = m.sim.run();

    println!("custom CC + PrioPlus:");
    for (name, id) in [("low ", lo), ("high", hi)] {
        let r = &res.records[id as usize];
        println!(
            "  {name}: fct {}",
            r.fct()
                .map(|t| format!("{t}"))
                .unwrap_or("unfinished".into())
        );
    }
    let tput = res.traces[&lo].throughput.as_ref().unwrap().series_gbps();
    println!(
        "  low-priority goodput during contention (1.3-2.5ms): {:.1} Gbps",
        tput.window_mean(1300.0, 2500.0).unwrap_or(0.0)
    );
    println!("  (strict yielding with a CC PrioPlus has never seen before)");
}
