//! Distributed training with per-model virtual priorities (Fig 12c at demo
//! scale): four ResNet-class and four VGG-class data-parallel jobs share a
//! 2:1 oversubscribed leaf–spine cluster, communicating via ring
//! all-reduce. Giving each model's traffic its own priority interleaves
//! the communication phases and speeds up *all* models.
//!
//! Run with: `cargo run --release --example ml_training`

use experiments::mltrain::{self, MlConfig};
use experiments::Scheme;

fn main() {
    println!("running baseline (Swift, no priorities)...");
    let base = mltrain::run(&MlConfig::new(Scheme::BaselineSwift));
    println!("running PrioPlus+Swift (8 virtual priorities)...");
    let pp = mltrain::run(&MlConfig::new(Scheme::PrioPlusSwift));
    println!("running Physical+Swift (8 physical queues)...");
    let phys = mltrain::run(&MlConfig::new(Scheme::PhysicalSwift));

    println!("\niterations completed per job (30 ms horizon):");
    println!(
        "{:<12} {:>9} {:>9} {:>9}",
        "job", "baseline", "prioplus", "physical"
    );
    for i in 0..base.jobs.len() {
        println!(
            "{:<12} {:>9} {:>9} {:>9}",
            base.jobs[i].name,
            base.jobs[i].iterations,
            pp.jobs[i].iterations,
            phys.jobs[i].iterations
        );
    }
    for family in ["resnet", "vgg", "all"] {
        let b = base.iterations(family).max(1);
        println!(
            "{family:<8} speedup: prioplus {:.2}x, physical {:.2}x",
            pp.iterations(family) as f64 / b as f64,
            phys.iterations(family) as f64 / b as f64
        );
    }
}
