//! Quickstart: virtual priority on a single bottleneck in ~40 lines.
//!
//! Two flows share one physical switch queue. The low-priority flow starts
//! first and owns the link; at 1 ms a high-priority flow arrives, and
//! PrioPlus makes the low-priority flow yield *all* bandwidth within tens
//! of microseconds — no switch support, just congestion control.
//!
//! Run with: `cargo run --release --example quickstart`

use experiments::micro::{Micro, MicroEnv};
use netsim::NoiseModel;
use simcore::Time;
use transport::{CcSpec, PrioPlusPolicy};

fn main() {
    let mut m = Micro::build(&MicroEnv {
        senders: 2,
        end: Time::from_ms(6),
        trace: true,
        noise: NoiseModel::testbed(), // the paper's measured NIC noise
        ..Default::default()
    });

    // PrioPlus wrapped around Swift, two virtual priorities in ONE queue.
    let cc = CcSpec::PrioPlusSwift {
        policy: PrioPlusPolicy::paper_default(2),
    };
    let lo = m.add_flow(
        1,
        50_000_000,
        Time::ZERO,
        /*phys*/ 0,
        /*virt*/ 0,
        &cc,
    );
    let hi = m.add_flow(2, 25_000_000, Time::from_ms(1), 0, 1, &cc);

    let res = m.sim.run();

    println!("flow   prio  start     fct        delivered");
    for (name, id) in [("low", lo), ("high", hi)] {
        let r = &res.records[id as usize];
        println!(
            "{name:<6} {:<5} {:<9} {:<10} {} bytes",
            r.virt_prio,
            format!("{}", r.start),
            r.fct()
                .map(|t| format!("{t}"))
                .unwrap_or("unfinished".into()),
            r.delivered
        );
    }

    // Show the low-priority flow's goodput around the contention window.
    let tput = res.traces[&lo].throughput.as_ref().unwrap().series_gbps();
    println!("\nlow-priority goodput (Gbps):");
    for (label, from, to) in [
        ("before high-prio (0.3-0.9ms)", 300.0, 900.0),
        ("during high-prio (1.3-2.5ms)", 1300.0, 2500.0),
        ("after  high-prio (3.5-4.5ms)", 3500.0, 4500.0),
    ] {
        println!(
            "  {label}: {:.1}",
            tput.window_mean(from, to).unwrap_or(0.0)
        );
    }
    println!(
        "\nprobes sent while yielding: {} (42 Mbps-class overhead, §4.2.1)",
        res.counters.probes
    );
}
