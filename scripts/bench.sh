#!/usr/bin/env bash
# Build release, run the dependency-free simbench harness, and diff
# events/sec against the previously committed BENCH_simbench.json.
#
# Usage: scripts/bench.sh  (honors PRIOPLUS_JOBS / --jobs via simbench)
set -euo pipefail
cd "$(dirname "$0")/.."

BENCH_FILE="BENCH_simbench.json"
PREV=""
if [[ -f "$BENCH_FILE" ]]; then
  PREV=$(mktemp)
  cp "$BENCH_FILE" "$PREV"
fi

cargo build --release -p prioplus-bench --bin simbench
./target/release/simbench "$@"

if [[ -n "$PREV" ]]; then
  echo
  echo "=== events/sec vs previous $BENCH_FILE ==="
  # Extract "name events_per_sec" pairs from old and new and print deltas.
  extract() {
    sed -n 's/.*"name": "\([^"]*\)".*"events_per_sec": \([0-9.]*\).*/\1 \2/p' "$1"
  }
  join <(extract "$PREV" | sort) <(extract "$BENCH_FILE" | sort) |
    while read -r name old new; do
      awk -v n="$name" -v o="$old" -v c="$new" 'BEGIN {
        delta = (o > 0) ? (c - o) / o * 100.0 : 0.0
        printf "  %-18s %14.0f -> %14.0f  (%+.1f%%)\n", n, o, c, delta
      }'
    done
  # Allocation counters (arena_churn): slab growth or INT-box count rising
  # faster than events means the zero-steady-state-allocation contract is
  # eroding — surface the drift alongside the throughput numbers.
  extract_alloc() {
    sed -n 's/.*"name": "\([^"]*\)".*"arena_slab_slots": \([0-9]*\).*"arena_int_allocs": \([0-9]*\).*/\1 \2 \3/p' "$1"
  }
  if [[ -n "$(extract_alloc "$BENCH_FILE")" ]]; then
    echo
    echo "=== allocation counters vs previous $BENCH_FILE ==="
    join <(extract_alloc "$PREV" | sort) <(extract_alloc "$BENCH_FILE" | sort) |
      while read -r name old_slots old_int new_slots new_int; do
        printf "  %-18s slab_slots %8s -> %-8s  int_allocs %8s -> %-8s\n" \
          "$name" "$old_slots" "$new_slots" "$old_int" "$new_int"
      done
  fi
  # Fault-regime scenario (incast_faults): wall-time drift is the
  # headline number here — the fault overlay sits on the hot
  # dequeue/arrival paths even when no fault is active, so a slowdown on
  # this row means the overlay got expensive. The counters confirm the
  # schedule still exercises real drops.
  extract_faults() {
    sed -n 's/.*"name": "\(incast_faults\)", "wall_ms": \([0-9.]*\).*"fault_events": \([0-9]*\), "fault_link_drops": \([0-9]*\).*/\1 \2 \3 \4/p' "$1"
  }
  if [[ -n "$(extract_faults "$BENCH_FILE")" ]]; then
    echo
    echo "=== incast_faults wall-time vs previous $BENCH_FILE ==="
    join <(extract_faults "$PREV" | sort) <(extract_faults "$BENCH_FILE" | sort) |
      while read -r name old_wall old_ev old_drops new_wall new_ev new_drops; do
        awk -v o="$old_wall" -v c="$new_wall" -v oe="$old_ev" -v ne="$new_ev" \
            -v od="$old_drops" -v nd="$new_drops" 'BEGIN {
          drift = (o > 0) ? (c - o) / o * 100.0 : 0.0
          printf "  incast_faults      wall %8.1f ms -> %8.1f ms  (%+.1f%%)  fault_events %s -> %s  link_drops %s -> %s\n", \
            o, c, drift, oe, ne, od, nd
        }'
      done
  fi
  # Hybrid model speedup (incast_hybrid / websearch_hybrid): the
  # event_reduction factor is the whole point of the fluid background
  # model — print its drift so a coupling change that silently erodes
  # (or inflates) the speedup or the foreground-FCT fidelity is visible.
  extract_hybrid() {
    sed -n 's/.*"name": "\([^"]*\)".*"event_reduction": \([0-9.]*\).*"wall_reduction": \([0-9.]*\).*"fg_fct_delta_pct": \(-\{0,1\}[0-9.]*\).*/\1 \2 \3 \4/p' "$1"
  }
  if [[ -n "$(extract_hybrid "$BENCH_FILE")" ]]; then
    echo
    echo "=== hybrid event_reduction vs previous $BENCH_FILE ==="
    join <(extract_hybrid "$PREV" | sort) <(extract_hybrid "$BENCH_FILE" | sort) |
      while read -r name old_ev old_wall old_fct new_ev new_wall new_fct; do
        awk -v n="$name" -v oe="$old_ev" -v ne="$new_ev" \
            -v nw="$new_wall" -v nf="$new_fct" 'BEGIN {
          drift = (oe > 0) ? (ne - oe) / oe * 100.0 : 0.0
          printf "  %-18s event_reduction %6.2fx -> %-6.2fx (%+.1f%%)  wall %6.2fx  fg_fct %+6.2f%%\n", \
            n, oe, ne, drift, nw, nf
        }'
      done
  fi
  # Batch dispatch (incast rows): batch_avg = events per scheduler pop —
  # how many same-timestamp events each pop_batch drains in one scheduler
  # interaction. Falling back toward 1.0 means the batching amortization
  # is eroding (every event pays a full heap/bucket operation again).
  extract_batch() {
    sed -n 's/.*"name": "\([^"]*\)".*"sched_pops": \([0-9]*\), "batch_avg": \([0-9.]*\).*/\1 \2 \3/p' "$1"
  }
  if [[ -n "$(extract_batch "$BENCH_FILE")" ]]; then
    echo
    echo "=== batch dispatch (events/pop) vs previous $BENCH_FILE ==="
    join <(extract_batch "$PREV" | sort) <(extract_batch "$BENCH_FILE" | sort) |
      while read -r name old_pops old_avg new_pops new_avg; do
        awk -v n="$name" -v o="$old_avg" -v c="$new_avg" \
            -v op="$old_pops" -v np="$new_pops" 'BEGIN {
          drift = (o > 0) ? (c - o) / o * 100.0 : 0.0
          printf "  %-24s batch_avg %6.3f -> %-6.3f (%+.1f%%)  sched_pops %s -> %s\n", \
            n, o, c, drift, op, np
        }'
      done
  fi
  # Warm-start sweep: the reduction factor is the point of the snapshot
  # subsystem — prefix-sharing configs forking from one warmup snapshot
  # instead of re-simulating it. Dropping toward 1.0 means snapshot/restore
  # got expensive relative to the warmup it saves.
  extract_warm() {
    sed -n 's/.*"warmstart": {"configs": \([0-9]*\), "groups": \([0-9]*\).*"warmstart_reduction": \([0-9.]*\).*/\1 \2 \3/p' "$1"
  }
  if [[ -n "$(extract_warm "$BENCH_FILE")" ]]; then
    echo
    echo "=== warm-start reduction vs previous $BENCH_FILE ==="
    old_warm=$(extract_warm "$PREV")
    new_warm=$(extract_warm "$BENCH_FILE")
    awk -v o="${old_warm:-}" -v n="$new_warm" 'BEGIN {
      split(o, a); split(n, b)
      if (o == "") {
        printf "  warmstart_sweep        %s configs / %s groups  reduction %.2fx (no previous)\n", b[1], b[2], b[3]
      } else {
        drift = (a[3] > 0) ? (b[3] - a[3]) / a[3] * 100.0 : 0.0
        printf "  warmstart_sweep        %s configs / %s groups  reduction %.2fx -> %.2fx (%+.1f%%)\n", \
          b[1], b[2], a[3], b[3], drift
      }
    }'
  fi
  # Hyperscale scenario (hyperscale_incast): the memory-budget counters
  # are the headline — peak live flows and resident bytes must track
  # concurrency, not total flow lifetimes. flows_reclaimed drifting below
  # flows_finished means completion-time slab reclamation is eroding.
  extract_hyper() {
    sed -n 's/.*"name": "\(hyperscale_incast\)".*"flows_total": \([0-9]*\), "flows_finished": \([0-9]*\), "flow_live_peak": \([0-9]*\).*"flows_reclaimed": \([0-9]*\), "mem_budget_bytes": \([0-9]*\).*/\1 \2 \3 \4 \5 \6/p' "$1"
  }
  if [[ -n "$(extract_hyper "$BENCH_FILE")" ]]; then
    echo
    echo "=== hyperscale_incast memory budget vs previous $BENCH_FILE ==="
    join <(extract_hyper "$PREV" | sort) <(extract_hyper "$BENCH_FILE" | sort) |
      while read -r name ot of op orc om nt nf np nrc nm; do
        awk -v ot="$ot" -v nt="$nt" -v nf="$nf" -v op="$op" -v np="$np" \
            -v orc="$orc" -v nrc="$nrc" -v om="$om" -v nm="$nm" 'BEGIN {
          drift = (om > 0) ? (nm - om) / om * 100.0 : 0.0
          printf "  hyperscale_incast  flows %s -> %s (finished %s, reclaimed %s)  live_peak %s -> %s  mem %.2f MB -> %.2f MB (%+.1f%%)\n", \
            ot, nt, nf, nrc, op, np, om / 1e6, nm / 1e6, drift
        }'
      done
  fi
  rm -f "$PREV"
else
  echo "(no previous $BENCH_FILE; baseline written)"
fi
