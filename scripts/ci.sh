#!/usr/bin/env bash
# Full CI gauntlet, in escalating order of strictness:
#
#   1. simlint: the workspace static-analysis pass (token rules R1-R8 plus
#      the symbol-index semantic passes: crate/module layering,
#      shared-state, event-exhaustiveness) must report zero unallowed
#      findings; the machine-readable report lands in target/simlint.json
#      as a CI artifact, and a stale simlint.baseline (file present, scan
#      clean) fails the leg;
#   2. clippy: `cargo clippy --workspace --all-targets -- -D warnings`
#      (skipped with a warning if the toolchain has no clippy component);
#   3. tier-1: release build + full test suite (includes the property
#      fleets and the golden-trace diffs);
#   4. audit compile-out: netsim must build with the audit layer compiled
#      out entirely (--no-default-features);
#   5. audited e2e: the whole experiments test suite rerun with the
#      invariant audit enabled on every Sim, panicking on any violation —
#      this includes the packet-arena live/free accounting invariant; the
#      arena- and audit-focused suites then rerun with the deep scan forced
#      to every event boundary (PRIOPLUS_AUDIT_DEEP=1) so arena reference
#      counts are verified at maximum granularity;
#   6. hybrid model: the packet/fluid e2e suite rerun with the audit (and
#      its per-port fluid mass-conservation invariant) force-enabled on
#      every Sim and the deep scan at every event — zero-background
#      bit-identity, the conservation property fleet, and the
#      FluidDrainLeak detection test all under maximum audit granularity;
#   7. fault regimes: the fault e2e matrix (link flaps, degradation,
#      pause storms, the PFC deadlock monitor) rerun with the audit
#      force-enabled, panicking on violations, and the deep scan at every
#      event — conservation under failure at maximum granularity (the
#      detector tests install their own non-panicking audit, so expected
#      violations don't trip the panic switch);
#   8. hyperscale smoke: the downscaled (k=8 fat-tree) open-loop
#      hyperscale suite rerun with the audit force-enabled, panicking on
#      violations, and the deep scan forced to a tight cadence — the
#      flow-slab reclamation sweep (FlowStateLeak) and occupancy
#      cross-check run thousands of times over streamed arrivals;
#   9. snapshot/resume: the snapshot e2e suite (CC matrix × all three
#      scheduler backends, resume-at-T bit-identity, the completeness
#      tamper fleet, the warm-start differential) plus the golden-trace
#      resume test, rerun with the audit force-enabled and panicking —
#      the audit mirror rides in the snapshot, so a restore that loses
#      conservation state fails here loudly;
#  10. scheduler matrix: tier-1 tests rerun with PRIOPLUS_SCHED=binary
#      and =quad, so every code path pinned on the calendar-queue default
#      (unit, e2e, golden) also runs — and stays bit-identical — on the
#      alternative event schedulers;
#  11. bench drift: scripts/bench.sh prints events/sec deltas against the
#      committed BENCH_simbench.json (informational — inspect by hand;
#      per-backend rows cover event-queue drift for all three backends,
#      the arena_churn row carries the allocation counters that pin the
#      zero-steady-state-allocation contract, the hybrid rows carry the
#      event_reduction factors that pin the fluid model's speedup, the
#      incast_faults row carries the wall-time cost of the fault
#      overlay on the hot paths, the hyperscale_incast row carries
#      the flow-slab memory-budget counters, the incast rows carry the
#      batch_avg events/pop amortization, and the warmstart_sweep row
#      carries the prefix-sharing warm-start reduction).
#
# Each leg prints its wall time on completion.
#
# Usage: scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

LEG_START=$SECONDS
leg_done() {
  echo "--- leg wall time: $(( SECONDS - LEG_START ))s ---"
  LEG_START=$SECONDS
}

# Refuse to run the matrix with a typo'd scheduler override in the
# environment: the library would warn and silently fall back to the binary
# heap, and every PRIOPLUS_SCHED leg below would quietly test the wrong
# backend. Fail loudly here instead. Keep this list in sync with
# `simcore::sched::from_env_value` (tested by `env_value_parse_contract`).
if [[ -n "${PRIOPLUS_SCHED:-}" ]]; then
  case "${PRIOPLUS_SCHED}" in
    binary|heap|binaryheap|quad|4ary|heap4|quadheap|calendar|calq|calqueue) ;;
    *)
      echo "ci.sh: unknown PRIOPLUS_SCHED value '${PRIOPLUS_SCHED}'" >&2
      echo "ci.sh: valid: binary|heap|binaryheap, quad|4ary|heap4|quadheap, calendar|calq|calqueue" >&2
      exit 2
      ;;
  esac
fi

echo "=== [1/11] simlint: workspace static analysis ==="
cargo run --release -q -p simlint -- --json target/simlint.json
echo "ci.sh: JSON report written to target/simlint.json"
leg_done

echo
echo "=== [2/11] clippy (-D warnings) ==="
if cargo clippy --version >/dev/null 2>&1; then
  cargo clippy --workspace --all-targets -- -D warnings
else
  echo "ci.sh: WARNING: clippy not installed on this toolchain, skipping" >&2
fi
leg_done

echo
echo "=== [3/11] tier-1: release build + tests ==="
cargo build --release
cargo test -q
leg_done

echo
echo "=== [4/11] audit compiles out (netsim --no-default-features) ==="
cargo build --release -p netsim --no-default-features
leg_done

echo
echo "=== [5/11] audit-enabled e2e suite (violations are fatal) ==="
PRIOPLUS_AUDIT=1 PRIOPLUS_AUDIT_PANIC=1 \
  cargo test -q --release -p experiments
echo "--- arena accounting at every event boundary (deep scan forced) ---"
PRIOPLUS_AUDIT=1 PRIOPLUS_AUDIT_PANIC=1 PRIOPLUS_AUDIT_DEEP=1 \
  cargo test -q --release -p experiments --test e2e_arena --test e2e_audit
leg_done

echo
echo "=== [6/11] hybrid packet/fluid e2e (fluid conservation forced) ==="
PRIOPLUS_AUDIT=1 PRIOPLUS_AUDIT_PANIC=1 PRIOPLUS_AUDIT_DEEP=1 \
  cargo test -q --release -p experiments --test e2e_hybrid
leg_done

echo
echo "=== [7/11] fault-regime e2e (deadlock monitor, conservation under failure) ==="
PRIOPLUS_AUDIT=1 PRIOPLUS_AUDIT_PANIC=1 PRIOPLUS_AUDIT_DEEP=1 \
  cargo test -q --release -p experiments --test e2e_faults
leg_done

echo
echo "=== [8/11] hyperscale smoke (k=8 open-loop, slab reclamation audited) ==="
# Deep cadence 256, not 1: the deep scan's flow sweep is O(flows), and the
# hyperscale suite runs thousands of streamed flows over millions of
# events — an every-event sweep is quadratic and takes >10 min. 256 still
# sweeps the slab thousands of times per run (vs the default 64 it's a
# 4x-tighter *forced* floor independent of local env).
PRIOPLUS_AUDIT=1 PRIOPLUS_AUDIT_PANIC=1 PRIOPLUS_AUDIT_DEEP=256 \
  cargo test -q --release -p experiments --test e2e_hyperscale
leg_done

echo
echo "=== [9/11] snapshot/resume bit-identity (audited CC matrix) ==="
# The snapshot suite's headline test already audits both halves of every
# matrix run internally; forcing the audit on every Sim additionally
# covers the warm-start sweep and tamper-fleet simulators, and the panic
# switch turns any conservation drift across a snapshot boundary fatal.
PRIOPLUS_AUDIT=1 PRIOPLUS_AUDIT_PANIC=1 \
  cargo test -q --release -p experiments --test e2e_snapshot --test golden_traces
leg_done

echo
echo "=== [10/11] scheduler-backend matrix (binary, quad) ==="
PRIOPLUS_SCHED=binary cargo test -q
PRIOPLUS_SCHED=quad cargo test -q
leg_done

echo
echo "=== [11/11] benchmark drift vs committed BENCH_simbench.json ==="
scripts/bench.sh
leg_done

echo
echo "ci.sh: all gates passed (total: ${SECONDS}s)"
