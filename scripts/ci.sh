#!/usr/bin/env bash
# Full CI gauntlet, in escalating order of strictness:
#
#   1. tier-1: release build + full test suite (includes the property
#      fleets and the golden-trace diffs);
#   2. audit compile-out: netsim must build with the audit layer compiled
#      out entirely (--no-default-features);
#   3. audited e2e: the whole experiments test suite rerun with the
#      invariant audit enabled on every Sim, panicking on any violation;
#   4. scheduler matrix: tier-1 tests rerun with PRIOPLUS_SCHED=calendar
#      and =quad, so every default-backend code path (unit, e2e, golden)
#      also runs — and stays bit-identical — on the alternative event
#      schedulers;
#   5. bench drift: scripts/bench.sh prints events/sec deltas against the
#      committed BENCH_simbench.json (informational — inspect by hand;
#      per-backend rows cover event-queue drift for all three backends).
#
# Usage: scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "=== [1/5] tier-1: release build + tests ==="
cargo build --release
cargo test -q

echo
echo "=== [2/5] audit compiles out (netsim --no-default-features) ==="
cargo build --release -p netsim --no-default-features

echo
echo "=== [3/5] audit-enabled e2e suite (violations are fatal) ==="
PRIOPLUS_AUDIT=1 PRIOPLUS_AUDIT_PANIC=1 \
  cargo test -q --release -p experiments

echo
echo "=== [4/5] scheduler-backend matrix (calendar, quad) ==="
PRIOPLUS_SCHED=calendar cargo test -q
PRIOPLUS_SCHED=quad cargo test -q

echo
echo "=== [5/5] benchmark drift vs committed BENCH_simbench.json ==="
scripts/bench.sh

echo
echo "ci.sh: all gates passed"
