#!/usr/bin/env bash
# Full CI gauntlet, in escalating order of strictness:
#
#   1. simlint: the workspace static-analysis pass (determinism, wall-clock,
#      RNG, time-cast, hot-path-unwrap, and hot-path-alloc invariants) must
#      report zero unallowed findings;
#   2. clippy: `cargo clippy --workspace --all-targets -- -D warnings`
#      (skipped with a warning if the toolchain has no clippy component);
#   3. tier-1: release build + full test suite (includes the property
#      fleets and the golden-trace diffs);
#   4. audit compile-out: netsim must build with the audit layer compiled
#      out entirely (--no-default-features);
#   5. audited e2e: the whole experiments test suite rerun with the
#      invariant audit enabled on every Sim, panicking on any violation —
#      this includes the packet-arena live/free accounting invariant; the
#      arena- and audit-focused suites then rerun with the deep scan forced
#      to every event boundary (PRIOPLUS_AUDIT_DEEP=1) so arena reference
#      counts are verified at maximum granularity;
#   6. scheduler matrix: tier-1 tests rerun with PRIOPLUS_SCHED=calendar
#      and =quad, so every default-backend code path (unit, e2e, golden)
#      also runs — and stays bit-identical — on the alternative event
#      schedulers;
#   7. bench drift: scripts/bench.sh prints events/sec deltas against the
#      committed BENCH_simbench.json (informational — inspect by hand;
#      per-backend rows cover event-queue drift for all three backends, and
#      the arena_churn row carries the allocation counters that pin the
#      zero-steady-state-allocation contract).
#
# Usage: scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

# Refuse to run the matrix with a typo'd scheduler override in the
# environment: the library would warn and silently fall back to the binary
# heap, and every PRIOPLUS_SCHED leg below would quietly test the wrong
# backend. Fail loudly here instead. Keep this list in sync with
# `simcore::sched::from_env_value` (tested by `env_value_parse_contract`).
if [[ -n "${PRIOPLUS_SCHED:-}" ]]; then
  case "${PRIOPLUS_SCHED}" in
    binary|heap|binaryheap|quad|4ary|heap4|quadheap|calendar|calq|calqueue) ;;
    *)
      echo "ci.sh: unknown PRIOPLUS_SCHED value '${PRIOPLUS_SCHED}'" >&2
      echo "ci.sh: valid: binary|heap|binaryheap, quad|4ary|heap4|quadheap, calendar|calq|calqueue" >&2
      exit 2
      ;;
  esac
fi

echo "=== [1/7] simlint: workspace static analysis ==="
cargo run --release -q -p simlint

echo
echo "=== [2/7] clippy (-D warnings) ==="
if cargo clippy --version >/dev/null 2>&1; then
  cargo clippy --workspace --all-targets -- -D warnings
else
  echo "ci.sh: WARNING: clippy not installed on this toolchain, skipping" >&2
fi

echo
echo "=== [3/7] tier-1: release build + tests ==="
cargo build --release
cargo test -q

echo
echo "=== [4/7] audit compiles out (netsim --no-default-features) ==="
cargo build --release -p netsim --no-default-features

echo
echo "=== [5/7] audit-enabled e2e suite (violations are fatal) ==="
PRIOPLUS_AUDIT=1 PRIOPLUS_AUDIT_PANIC=1 \
  cargo test -q --release -p experiments
echo "--- arena accounting at every event boundary (deep scan forced) ---"
PRIOPLUS_AUDIT=1 PRIOPLUS_AUDIT_PANIC=1 PRIOPLUS_AUDIT_DEEP=1 \
  cargo test -q --release -p experiments --test e2e_arena --test e2e_audit

echo
echo "=== [6/7] scheduler-backend matrix (calendar, quad) ==="
PRIOPLUS_SCHED=calendar cargo test -q
PRIOPLUS_SCHED=quad cargo test -q

echo
echo "=== [7/7] benchmark drift vs committed BENCH_simbench.json ==="
scripts/bench.sh

echo
echo "ci.sh: all gates passed"
