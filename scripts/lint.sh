#!/usr/bin/env bash
# Run the workspace linter outside ci.sh.
#
# Usage:
#   scripts/lint.sh                 # text report to stdout
#   scripts/lint.sh --json [FILE]   # also write the JSON report
#                                   # (default: target/simlint.json)
#
# Any other arguments are passed through to simlint (e.g.
# --fix-allowlist to ratchet a baseline while burning one down).
set -euo pipefail
cd "$(dirname "$0")/.."

ARGS=()
while [[ $# -gt 0 ]]; do
  case "$1" in
    --json)
      shift
      if [[ $# -gt 0 && "${1:0:1}" != "-" ]]; then
        ARGS+=(--json "$1")
        shift
      else
        ARGS+=(--json target/simlint.json)
      fi
      ;;
    *)
      ARGS+=("$1")
      shift
      ;;
  esac
done

cargo run --release -q -p simlint -- "${ARGS[@]}"
