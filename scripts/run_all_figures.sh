#!/usr/bin/env bash
# Regenerate every paper figure/table at the default (quick) scale.
# Outputs land in results/ (text) and results/json/ (machine-readable).
#
# Flags are passed through to every figure binary:
#   --full       paper-scale parameters
#   --jobs N     parallel sweep workers (default: all cores; also
#                settable via PRIOPLUS_JOBS). Output is byte-identical
#                to a serial run regardless of N.
set -euo pipefail
cd "$(dirname "$0")/.."

mkdir -p results/json
export REPRO_JSON_DIR="$PWD/results/json"

cargo build --release -p experiments --bins

bins=(
  fig02_buffer_ratio
  fig03_motivation
  tab02_start_strategies
  fig07_noise_cdf
  fig08_testbed_prios
  fig09_fluctuation
  fig10_micro
  fig11_flow_scheduling
  fig12_coflow
  fig13_noncongestive
  fig14_breakdown
  fig16_hpcc_ackprio
  fig17_lossy_coflow
  fig18_coflow_extra
  appd_fluctuation
)

for b in "${bins[@]}"; do
  echo "=== $b ==="
  ./target/release/"$b" "$@" | tee "results/$b.txt"
done
echo "All figures regenerated under results/."
