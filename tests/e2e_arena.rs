//! Arena determinism: the packet arena changes how packets are *stored*
//! (slab + `PacketId` handles through the event queue) but must never
//! change what the simulator *computes*. For random flow mixes — in both
//! the lossy (drops) and PFC-on (pauses) regimes — every scheduler backend
//! must produce a bit-identical [`netsim::SimResult`]. The golden-trace
//! corpus (pinned before the arena landed, passing unmodified) anchors
//! these runs to the by-value baseline; this fleet extends that anchor to
//! arbitrary workloads.

use experiments::micro::{Micro, MicroEnv};
use netsim::{NoiseModel, SimResult};
use proptest::prelude::*;
use simcore::{SchedKind, Time};
use transport::{CcSpec, PrioPlusPolicy};

/// Build and run one micro incast: `flows` are `(sender, size, start_us,
/// virt_prio)`. `lossy` drops instead of pausing; either way the buffer is
/// squeezed so the congestion machinery (and the arena's release-on-drop /
/// PFC-packet paths) actually fires.
fn run_one(
    flows: &[(usize, u64, u64, u8)],
    senders: usize,
    lossy: bool,
    seed: u64,
    sched: SchedKind,
) -> SimResult {
    let mut env = MicroEnv {
        senders,
        end: Time::from_ms(20),
        trace: false,
        noise: NoiseModel::testbed(),
        seed,
        sched,
        ..Default::default()
    };
    env.switch.buffer_bytes = 256 * 1024;
    env.switch.pfc_enabled = !lossy;
    let mut m = Micro::build(&env);
    let cc = CcSpec::PrioPlusSwift {
        policy: PrioPlusPolicy::paper_default(4),
    };
    for &(s, size, start_us, vp) in flows {
        m.add_flow(s, size, Time::from_us(start_us), 0, vp.min(3), &cc);
    }
    m.sim.run()
}

/// Bit-exact equality over everything a run records, including the arena
/// counters themselves (slab growth is part of the deterministic contract:
/// LIFO reuse means identical allocation order, hence identical ids).
fn assert_results_identical(a: &SimResult, b: &SimResult, what: &str) {
    assert_eq!(a.end_time, b.end_time, "{what}: end_time");
    let (ca, cb) = (&a.counters, &b.counters);
    assert_eq!(ca.events, cb.events, "{what}: events");
    assert_eq!(ca.data_delivered, cb.data_delivered, "{what}: delivered");
    assert_eq!(ca.pfc_pauses, cb.pfc_pauses, "{what}: pfc_pauses");
    assert_eq!(ca.pfc_resumes, cb.pfc_resumes, "{what}: pfc_resumes");
    assert_eq!(ca.drops, cb.drops, "{what}: drops");
    assert_eq!(ca.ecn_marks, cb.ecn_marks, "{what}: ecn_marks");
    assert_eq!(ca.probes, cb.probes, "{what}: probes");
    assert_eq!(ca.max_buffer_used, cb.max_buffer_used, "{what}: max_buffer");
    assert_eq!(ca.arena_allocs, cb.arena_allocs, "{what}: arena_allocs");
    assert_eq!(
        ca.arena_slab_slots, cb.arena_slab_slots,
        "{what}: arena_slab_slots"
    );
    assert_eq!(
        ca.arena_peak_live, cb.arena_peak_live,
        "{what}: arena_peak_live"
    );
    assert_eq!(
        ca.arena_int_allocs, cb.arena_int_allocs,
        "{what}: arena_int_allocs"
    );
    assert_eq!(a.records.len(), b.records.len(), "{what}: record count");
    for (ra, rb) in a.records.iter().zip(&b.records) {
        let f = ra.flow;
        assert_eq!(ra.start, rb.start, "{what}: flow {f} start");
        assert_eq!(ra.finish, rb.finish, "{what}: flow {f} finish");
        assert_eq!(ra.delivered, rb.delivered, "{what}: flow {f} delivered");
        assert_eq!(
            ra.retransmits, rb.retransmits,
            "{what}: flow {f} retransmits"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8 })]

    /// Random flow mixes, both loss regimes, all three scheduler backends:
    /// one `SimResult`, bit for bit.
    #[test]
    fn backends_agree_bit_identically_on_random_mixes(
        sizes in proptest::collection::vec(5_000u64..800_000, 2..7),
        starts in proptest::collection::vec(0u64..1_500, 7),
        prios in proptest::collection::vec(0u8..4, 7),
        seed in 0u64..10_000,
        lossy_bit in 0u8..2,
    ) {
        let lossy = lossy_bit == 1;
        let senders = sizes.len();
        let flows: Vec<_> = sizes
            .iter()
            .enumerate()
            .map(|(i, &sz)| (i + 1, sz, starts[i % starts.len()], prios[i % prios.len()]))
            .collect();
        let reference = run_one(&flows, senders, lossy, seed, SchedKind::Binary);
        // The run must be big enough to exercise the arena for real:
        // thousands of events and at least one full packet lifecycle.
        prop_assert!(reference.counters.events > 1_000, "degenerate run");
        prop_assert!(reference.counters.arena_allocs > 100, "no packet churn");
        for alt in [SchedKind::Quad, SchedKind::Calendar] {
            let got = run_one(&flows, senders, lossy, seed, alt);
            assert_results_identical(
                &reference,
                &got,
                &format!("{} vs binary (lossy={lossy})", alt.name()),
            );
        }
        // And the same backend re-run must reproduce itself exactly —
        // the arena's LIFO free list leaves no room for id-order drift.
        let again = run_one(&flows, senders, lossy, seed, SchedKind::Binary);
        assert_results_identical(&reference, &again, "binary re-run");
    }
}
