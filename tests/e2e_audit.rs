//! End-to-end runs with the invariant-audit layer enabled.
//!
//! Two claims are established here. First, the audit is *clean* on the
//! seed simulator: full runs across the congestion-control matrix report
//! zero violations, so every audit invariant is a real property of the
//! code, not an aspiration. Second, the audit *detects*: each `Buggify`
//! fault injection produces at least one violation of the expected kind.
//! Together these pin the audit's false-positive and false-negative rate
//! at zero for the faults we can inject.

use experiments::micro::{Micro, MicroEnv};
use netsim::{Buggify, SimResult, SwitchConfig, ViolationKind};
use simcore::Time;
use transport::{CcSpec, PrioPlusPolicy};

/// Run a `senders`-way incast with the audit layer on and return the
/// result (including the audit report).
fn run_audited(cc: &CcSpec, switch: SwitchConfig, senders: usize, size: u64) -> SimResult {
    let mut m = Micro::build(&MicroEnv {
        senders,
        end: Time::from_ms(10),
        trace: false,
        switch,
        ..Default::default()
    });
    m.sim.enable_audit();
    for s in 1..=senders {
        m.add_flow(s, size, Time::ZERO, 0, 0, cc);
    }
    m.sim.run()
}

fn kinds(res: &SimResult) -> Vec<ViolationKind> {
    res.audit
        .as_ref()
        .expect("audit enabled")
        .violations
        .iter()
        .map(|v| v.kind)
        .collect()
}

#[test]
fn audit_is_clean_across_the_cc_matrix() {
    let ccs: Vec<(&str, CcSpec, SwitchConfig)> = vec![
        (
            "swift",
            CcSpec::Swift {
                queuing: Time::from_us(4),
                scaling: false,
            },
            SwitchConfig::default(),
        ),
        (
            "prioplus-swift",
            CcSpec::PrioPlusSwift {
                policy: PrioPlusPolicy::paper_default(4),
            },
            SwitchConfig::default(),
        ),
        (
            "ledbat",
            CcSpec::Ledbat {
                queuing: Time::from_us(4),
            },
            SwitchConfig::default(),
        ),
        (
            "dctcp",
            CcSpec::D2tcp {
                deadline_factor: None,
            },
            SwitchConfig::default(),
        ),
        (
            "hpcc",
            CcSpec::Hpcc,
            SwitchConfig {
                int_enabled: true,
                ..Default::default()
            },
        ),
        (
            "swift-weighted",
            CcSpec::SwiftWeighted {
                queuing: Time::from_us(4),
                weight: 2.0,
            },
            SwitchConfig::default(),
        ),
        ("blast", CcSpec::Blast, SwitchConfig::default()),
    ];
    for (name, cc, switch) in ccs {
        let res = run_audited(&cc, switch, 4, 1_000_000);
        let report = res.audit.as_ref().expect("audit enabled");
        assert_eq!(
            report.total_violations, 0,
            "{name}: audit violations {:?}",
            report.violations
        );
        assert_eq!(res.completion_rate(), 1.0, "{name}: incomplete run");
    }
}

#[test]
fn audit_is_clean_under_lossy_dt_drops() {
    // A lossy switch with a small buffer forces real DT drops; the audit's
    // packet-conservation and buffer checks must account for them.
    let switch = SwitchConfig {
        pfc_enabled: false,
        buffer_bytes: 200_000,
        ..Default::default()
    };
    let cc = CcSpec::Swift {
        queuing: Time::from_us(4),
        scaling: false,
    };
    let res = run_audited(&cc, switch, 8, 1_000_000);
    let report = res.audit.as_ref().expect("audit enabled");
    assert_eq!(
        report.total_violations, 0,
        "violations {:?}",
        report.violations
    );
    assert!(res.counters.drops > 0, "scenario must actually drop");
}

#[test]
fn audit_report_is_absent_when_not_enabled() {
    if netsim::audit::env_enabled() {
        // PRIOPLUS_AUDIT / --audit force-enables the audit on every Sim;
        // the default-off behavior is unobservable under that opt-in.
        return;
    }
    let mut m = Micro::build(&MicroEnv {
        senders: 2,
        end: Time::from_ms(5),
        trace: false,
        ..Default::default()
    });
    assert!(!m.sim.audit_enabled());
    let cc = CcSpec::Swift {
        queuing: Time::from_us(4),
        scaling: false,
    };
    m.add_flow(1, 100_000, Time::ZERO, 0, 0, &cc);
    let res = m.sim.run();
    assert!(res.audit.is_none());
}

#[test]
fn audit_is_purely_observational() {
    // Enabling the audit must not perturb the simulation: identical seeds
    // produce bit-identical flow outcomes with and without it.
    let outcome = |audited: bool| {
        let mut m = Micro::build(&MicroEnv {
            senders: 4,
            end: Time::from_ms(10),
            trace: false,
            seed: 77,
            ..Default::default()
        });
        if audited {
            m.sim.enable_audit();
        }
        let cc = CcSpec::PrioPlusSwift {
            policy: PrioPlusPolicy::paper_default(4),
        };
        for s in 1..=4 {
            m.add_flow(s, 2_000_000, Time::ZERO, 0, 0, &cc);
        }
        let res = m.sim.run();
        res.records
            .iter()
            .map(|r| (r.finish.map(|t| t.as_ps()), r.delivered, r.retransmits))
            .collect::<Vec<_>>()
    };
    assert_eq!(outcome(false), outcome(true));
}

#[test]
fn injected_dequeue_leak_is_caught() {
    let switch = SwitchConfig {
        buggify: Some(Buggify::DequeueLeak),
        ..Default::default()
    };
    let cc = CcSpec::Swift {
        queuing: Time::from_us(4),
        scaling: false,
    };
    let res = run_audited(&cc, switch, 4, 500_000);
    let ks = kinds(&res);
    assert!(
        ks.contains(&ViolationKind::BufferAccounting),
        "leak not caught: {ks:?}"
    );
}

#[test]
fn injected_pfc_off_by_one_is_caught() {
    // Small shared buffer + blast senders force the ingress counters over
    // the pause threshold; the buggified switch pauses one packet late and
    // the audit must see the unpaused over-threshold state.
    let switch = SwitchConfig {
        buffer_bytes: 1_000_000,
        buggify: Some(Buggify::PfcPauseOffByOne),
        ..Default::default()
    };
    let res = run_audited(&CcSpec::Blast, switch, 4, 500_000);
    let ks = kinds(&res);
    assert!(
        ks.contains(&ViolationKind::PfcXoffMissed),
        "off-by-one not caught: {ks:?}"
    );
}

#[test]
fn injected_ecn_below_kmin_is_caught() {
    let switch = SwitchConfig {
        buggify: Some(Buggify::EcnMarkBelowKmin),
        ..Default::default()
    };
    let cc = CcSpec::D2tcp {
        deadline_factor: None,
    };
    let res = run_audited(&cc, switch, 2, 200_000);
    let ks = kinds(&res);
    assert!(
        ks.contains(&ViolationKind::EcnBounds),
        "below-kmin marks not caught: {ks:?}"
    );
}
