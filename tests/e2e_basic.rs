//! End-to-end sanity of the full stack: simulator + Swift transport on the
//! micro-benchmark bottleneck.

use experiments::micro::{Micro, MicroEnv};
use netsim::NoiseModel;
use simcore::Time;
use transport::CcSpec;

fn swift() -> CcSpec {
    CcSpec::Swift {
        queuing: Time::from_us(4),
        scaling: false,
    }
}

#[test]
fn single_flow_completes_near_ideal() {
    let mut m = Micro::build(&MicroEnv {
        senders: 1,
        end: Time::from_ms(5),
        trace: false,
        ..Default::default()
    });
    // 1.5 MB at 100 Gbps: serialization 120us + 12us RTT => ideal ~132us.
    m.add_flow(1, 1_500_000, Time::ZERO, 0, 0, &swift());
    let res = m.sim.run();
    let r = &res.records[0];
    let fct = r.fct().expect("flow must finish").as_us_f64();
    assert!(fct >= 130.0, "faster than ideal: {fct}us");
    assert!(fct < 200.0, "too slow: {fct}us (slowdown > 1.5)");
    assert_eq!(r.delivered, 1_500_000);
    assert_eq!(res.counters.drops, 0);
}

#[test]
fn two_swift_flows_share_fairly() {
    let mut m = Micro::build(&MicroEnv {
        senders: 2,
        end: Time::from_ms(10),
        trace: false,
        ..Default::default()
    });
    // Two long flows from different senders to the same receiver.
    let size = 12_500_000; // 1ms each alone at 100G
    m.add_flow(1, size, Time::ZERO, 0, 0, &swift());
    m.add_flow(2, size, Time::ZERO, 0, 0, &swift());
    let res = m.sim.run();
    let f0 = res.records[0].fct().expect("finish").as_us_f64();
    let f1 = res.records[1].fct().expect("finish").as_us_f64();
    // Sharing means both take ~2x solo time; fairness means similar FCTs.
    assert!(f0 > 1500.0 && f1 > 1500.0, "{f0} {f1}");
    let ratio = f0.max(f1) / f0.min(f1);
    assert!(ratio < 1.3, "unfair split: {f0} vs {f1}");
    // Work conservation: total time ~ 2ms, not much more.
    assert!(f0.max(f1) < 2_600.0, "underutilized: {}", f0.max(f1));
}

#[test]
fn many_flows_all_complete() {
    let mut m = Micro::build(&MicroEnv {
        senders: 30,
        end: Time::from_ms(20),
        trace: false,
        ..Default::default()
    });
    for s in 1..=30 {
        m.add_flow(s, 200_000, Time::ZERO, 0, 0, &swift());
    }
    let res = m.sim.run();
    assert_eq!(res.completion_rate(), 1.0);
    let total: u64 = res.records.iter().map(|r| r.delivered).sum();
    assert_eq!(total, 30 * 200_000);
}

#[test]
fn simulation_is_deterministic() {
    let run = || {
        let mut m = Micro::build(&MicroEnv {
            senders: 5,
            end: Time::from_ms(5),
            noise: NoiseModel::testbed(),
            trace: false,
            seed: 99,
            ..Default::default()
        });
        for s in 1..=5 {
            m.add_flow(s, 500_000, Time::from_us(s as u64 * 10), 0, 0, &swift());
        }
        let res = m.sim.run();
        res.records
            .iter()
            .map(|r| (r.finish.map(|t| t.as_ps()), r.delivered))
            .collect::<Vec<_>>()
    };
    assert_eq!(run(), run());
}

#[test]
fn swift_keeps_queue_near_target() {
    let mut m = Micro::build(&MicroEnv {
        senders: 4,
        end: Time::from_ms(8),
        trace: false,
        ..Default::default()
    });
    m.monitor_bottleneck_queue(Time::from_us(10));
    for s in 1..=4 {
        m.add_flow(s, 50_000_000, Time::ZERO, 0, 0, &swift());
    }
    let res = m.sim.run();
    let (_, series) = &res.monitors[0];
    // After convergence (2ms), the queue should hover near the 4us target
    // (50 KB at 100G) and stay well below 10x that.
    let mean = series.window_mean(2_000.0, 8_000.0).unwrap();
    assert!(mean > 5_000.0, "queue too empty: {mean} bytes");
    assert!(mean < 500_000.0, "queue blew up: {mean} bytes");
}

#[test]
fn utilization_is_high_under_long_flows() {
    let mut m = Micro::build(&MicroEnv {
        senders: 4,
        end: Time::from_ms(8),
        trace: false,
        ..Default::default()
    });
    m.monitor_bottleneck_throughput(Time::from_us(100));
    for s in 1..=4 {
        m.add_flow(s, 50_000_000, Time::ZERO, 0, 0, &swift());
    }
    let res = m.sim.run();
    let (_, tput) = &res.monitors[0];
    let mean = tput.window_mean(2_000.0, 8_000.0).unwrap();
    assert!(mean > 90.0, "bottleneck throughput only {mean} Gbps");
}
