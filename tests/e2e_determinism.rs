//! End-to-end determinism: the parallel sweep runner must produce results
//! byte-identical to serial execution, regardless of worker count.

use experiments::flowsched::{run, run_many, FlowSchedConfig, FlowSchedResult};
use experiments::{SchedKind, Scheme};
use simcore::Time;

/// A quick-but-nontrivial scenario: enough flows to exercise PFC, ECN,
/// retransmit timers and the PrioPlus state machine.
fn quick_cfg(scheme: Scheme, seed: u64) -> FlowSchedConfig {
    let mut cfg = FlowSchedConfig::new(scheme, 4);
    cfg.duration = Time::from_ms(1);
    cfg.seed = seed;
    cfg
}

/// Bit-exact equality for the full result, including every per-flow float.
fn assert_identical(a: &FlowSchedResult, b: &FlowSchedResult, what: &str) {
    assert_eq!(a.pfc_pauses, b.pfc_pauses, "{what}: pfc_pauses differ");
    assert_eq!(a.drops, b.drops, "{what}: drops differ");
    assert_eq!(
        a.completion.to_bits(),
        b.completion.to_bits(),
        "{what}: completion differs"
    );
    assert_eq!(a.flows.len(), b.flows.len(), "{what}: flow count differs");
    for (i, (fa, fb)) in a.flows.iter().zip(&b.flows).enumerate() {
        assert_eq!(fa.size, fb.size, "{what}: flow {i} size");
        assert_eq!(fa.class, fb.class, "{what}: flow {i} class");
        assert_eq!(
            fa.slowdown.map(f64::to_bits),
            fb.slowdown.map(f64::to_bits),
            "{what}: flow {i} slowdown"
        );
        assert_eq!(
            fa.fct_us.map(f64::to_bits),
            fb.fct_us.map(f64::to_bits),
            "{what}: flow {i} fct"
        );
    }
}

#[test]
fn parallel_sweep_is_bit_identical_to_serial() {
    let cfgs: Vec<FlowSchedConfig> = [
        (Scheme::PrioPlusSwift, 1),
        (Scheme::PrioPlusSwift, 2),
        (Scheme::PhysicalSwift, 1),
        (Scheme::BaselineSwift, 1),
    ]
    .iter()
    .map(|&(s, seed)| quick_cfg(s, seed))
    .collect();

    // Reference: plain serial calls, no sweep machinery at all.
    let serial: Vec<FlowSchedResult> = cfgs.iter().map(run).collect();
    // Inline path (jobs <= 1 never spawns threads).
    let inline = run_many(&cfgs, 1);
    // Threaded path with more workers than configs, forcing every config
    // onto its own worker plus idle workers racing the shared index.
    let threaded = run_many(&cfgs, 4);

    assert_eq!(serial.len(), inline.len());
    assert_eq!(serial.len(), threaded.len());
    for (i, s) in serial.iter().enumerate() {
        assert_identical(s, &inline[i], &format!("jobs=1 cfg {i}"));
        assert_identical(s, &threaded[i], &format!("jobs=4 cfg {i}"));
    }
}

/// Run every CC scheme under one alternative scheduler backend and demand
/// bit-identical results to the binary-heap reference. Combined with the
/// sweep tests above, this proves `PRIOPLUS_SCHED` is purely a performance
/// knob across the whole transport matrix (Swift, LEDBAT, DCTCP/D2TCP,
/// HPCC, blast, and the PrioPlus variants), not just the golden scenarios.
fn assert_backend_matches_binary(alt: SchedKind) {
    let schemes = [
        Scheme::PrioPlusSwift,
        Scheme::PhysicalSwift,
        Scheme::BaselineSwift,
        Scheme::PrioPlusSwiftAckData,
        Scheme::PrioPlusLedbat,
        Scheme::PhysicalStarNoCc,
        Scheme::PhysicalStarHpcc,
        Scheme::PhysicalStarSwift,
        Scheme::D2tcp,
    ];
    for scheme in schemes {
        let mut cfg = quick_cfg(scheme, 11);
        cfg.sched = SchedKind::Binary;
        let reference = run(&cfg);
        cfg.sched = alt;
        let got = run(&cfg);
        assert_identical(
            &reference,
            &got,
            &format!("{scheme:?} under {}", alt.name()),
        );
    }
}

#[test]
fn cc_matrix_is_bit_identical_under_quad_heap() {
    assert_backend_matches_binary(SchedKind::Quad);
}

#[test]
fn cc_matrix_is_bit_identical_under_calendar_queue() {
    assert_backend_matches_binary(SchedKind::Calendar);
}

#[test]
fn repeated_parallel_runs_agree_with_each_other() {
    let cfgs = vec![quick_cfg(Scheme::PrioPlusSwift, 7); 3];
    let a = run_many(&cfgs, 4);
    let b = run_many(&cfgs, 4);
    for (i, (ra, rb)) in a.iter().zip(&b).enumerate() {
        assert_identical(ra, rb, &format!("rerun cfg {i}"));
        // Identical configs must also yield identical results across slots.
        assert_identical(&a[0], ra, &format!("slot {i} vs slot 0"));
    }
}
