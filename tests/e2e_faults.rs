//! End-to-end fault-regime matrix: link flaps, degradation epochs, and
//! PFC pause storms under the invariant audit.
//!
//! Four claims are established here:
//!
//! 1. **Faults are deterministic**: every fault regime produces
//!    bit-identical results — record for record, counter for counter —
//!    across the binary/quad/calendar scheduler backends and across
//!    repeated runs. Fault transitions are ordinary scheduler events, so
//!    nothing about a failure depends on wall clock or backend choice.
//! 2. **The audit stays clean under failure**: packet conservation,
//!    buffer accounting and the counter identity hold with the deep scan
//!    on every event while links flap, degrade and storm. Accounted
//!    fault loss (`fault_link_drops`) joins the conservation ledger
//!    rather than escaping it, and transports recover the lost data via
//!    retransmission.
//! 3. **The deadlock monitor detects**: a constructed circular buffer
//!    dependency — pause storms pinning every clockwise egress of an
//!    odd ring carrying two-hop flows — is flagged as `PfcDeadlock`,
//!    while the same storm on an acyclic subset of ports stays silent.
//! 4. **The accounting is load-bearing**: the `FaultDropUnaccounted`
//!    buggify (fault drops counted but hidden from the audit) produces a
//!    `CounterMismatch`, pinning the false-negative rate at zero for the
//!    fault we can inject.
//!
//! A long-chain HPCC scenario additionally pins the INT-path spill
//! behavior (> 8 hops) at system level, with a mid-chain flap on top.

use experiments::micro::{Micro, MicroEnv};
use netsim::{
    AuditConfig, Buggify, FaultSchedule, FlowSpec, SchedKind, Sim, SimConfig, SimResult,
    SwitchConfig, Topology, ViolationKind,
};
use simcore::{Rate, Time};
use transport::{CcSpec, PrioPlusPolicy};

/// Every scheduler backend; fault events must be invisible to the choice.
const BACKENDS: [SchedKind; 3] = [SchedKind::Binary, SchedKind::Quad, SchedKind::Calendar];

/// Deep scan on every event, panicking at the first violation so a
/// failure names the exact offending event.
fn strict_audit() -> AuditConfig {
    AuditConfig {
        panic_on_violation: true,
        deep_every: 1,
        ..AuditConfig::default()
    }
}

/// Deep scan on every event, collecting violations for inspection. Used
/// by the detector tests, which must observe violations rather than die
/// on them — and which therefore also survive `PRIOPLUS_AUDIT_PANIC=1`
/// CI runs (the explicit config replaces the env-derived one).
fn detect_audit() -> AuditConfig {
    AuditConfig {
        panic_on_violation: false,
        deep_every: 1,
        ..AuditConfig::default()
    }
}

fn kinds(res: &SimResult) -> Vec<ViolationKind> {
    res.audit
        .as_ref()
        .expect("audit enabled")
        .violations
        .iter()
        .map(|v| v.kind)
        .collect()
}

/// Bit-exact equality of two runs: every flow-record field and every
/// counter, fault counters included. All fields are integer-backed
/// (`Time` is picoseconds), so `assert_eq!` is exact.
fn assert_bit_identical(a: &SimResult, b: &SimResult, what: &str) {
    assert_eq!(a.records.len(), b.records.len(), "{what}: record count");
    for (i, (x, y)) in a.records.iter().zip(b.records.iter()).enumerate() {
        assert_eq!(x.flow, y.flow, "{what}: record {i} flow id");
        assert_eq!(x.src, y.src, "{what}: record {i} src");
        assert_eq!(x.dst, y.dst, "{what}: record {i} dst");
        assert_eq!(x.size, y.size, "{what}: record {i} size");
        assert_eq!(x.start, y.start, "{what}: record {i} start");
        assert_eq!(x.finish, y.finish, "{what}: record {i} finish");
        assert_eq!(x.delivered, y.delivered, "{what}: record {i} delivered");
        assert_eq!(
            x.retransmits, y.retransmits,
            "{what}: record {i} retransmits"
        );
        assert_eq!(x.base_rtt, y.base_rtt, "{what}: record {i} base_rtt");
    }
    let (ca, cb) = (&a.counters, &b.counters);
    assert_eq!(ca.events, cb.events, "{what}: events");
    assert_eq!(ca.data_delivered, cb.data_delivered, "{what}: delivered");
    assert_eq!(ca.pfc_pauses, cb.pfc_pauses, "{what}: pfc_pauses");
    assert_eq!(ca.pfc_resumes, cb.pfc_resumes, "{what}: pfc_resumes");
    assert_eq!(ca.drops, cb.drops, "{what}: drops");
    assert_eq!(ca.ecn_marks, cb.ecn_marks, "{what}: ecn_marks");
    assert_eq!(
        ca.max_buffer_used, cb.max_buffer_used,
        "{what}: max_buffer_used"
    );
    assert_eq!(ca.fault_events, cb.fault_events, "{what}: fault_events");
    assert_eq!(
        ca.fault_link_drops, cb.fault_link_drops,
        "{what}: fault_link_drops"
    );
    assert_eq!(
        ca.fault_ctrl_drops, cb.fault_ctrl_drops,
        "{what}: fault_ctrl_drops"
    );
}

/// A 4-sender incast with a fault schedule installed. Hosts are
/// `0..=4` (0 is the receiver), the switch is node 5, and switch port
/// `i` faces host `i`.
fn run_incast(
    sched: SchedKind,
    faults: FaultSchedule,
    cc: &CcSpec,
    audit: AuditConfig,
    buggify: Option<Buggify>,
) -> SimResult {
    let mut m = Micro::build(&MicroEnv {
        senders: 4,
        end: Time::from_ms(10),
        trace: false,
        sched,
        faults: Some(faults),
        switch: SwitchConfig {
            buggify,
            ..SwitchConfig::default()
        },
        ..Default::default()
    });
    m.sim.enable_audit_with(audit);
    for s in 1..=4 {
        m.add_flow(s, 1_000_000, Time::ZERO, 0, 0, cc);
    }
    m.sim.run()
}

fn swift() -> CcSpec {
    CcSpec::Swift {
        queuing: Time::from_us(4),
        scaling: false,
    }
}

/// A link flap on the bottleneck (switch → receiver) link: the port is
/// busy throughout the incast, so the down transition always catches
/// packets in flight — dropped with accounted loss and recovered by
/// retransmission once the link returns.
fn flap_schedule() -> FaultSchedule {
    let mut f = FaultSchedule::new();
    f.link_flap(5, 0, Time::from_us(40), Time::from_us(160));
    f
}

#[test]
fn flap_regime_is_bit_identical_audit_clean_and_recovers() {
    let reference = run_incast(
        SchedKind::Binary,
        flap_schedule(),
        &swift(),
        strict_audit(),
        None,
    );
    assert_eq!(reference.counters.fault_events, 2, "down + up applied");
    assert!(
        reference.counters.fault_link_drops > 0,
        "flap must catch packets in flight"
    );
    assert_eq!(
        reference.completion_rate(),
        1.0,
        "retransmission must recover the fault loss"
    );
    let retransmits: u64 = reference.records.iter().map(|r| r.retransmits).sum();
    assert!(
        retransmits > 0,
        "recovery must come from actual retransmits"
    );
    for sched in BACKENDS {
        let got = run_incast(sched, flap_schedule(), &swift(), strict_audit(), None);
        assert_bit_identical(&reference, &got, &format!("flap/{sched:?}"));
    }
}

#[test]
fn degrade_regime_is_bit_identical_and_slows_the_bottleneck() {
    // Fault-free baseline vs a degraded bottleneck (quarter rate plus
    // 2 µs extra propagation for 300 µs): same audit-clean completion,
    // strictly later finishes.
    let mut m = Micro::build(&MicroEnv {
        senders: 4,
        end: Time::from_ms(10),
        trace: false,
        ..Default::default()
    });
    m.sim.enable_audit_with(strict_audit());
    for s in 1..=4 {
        m.add_flow(s, 1_000_000, Time::ZERO, 0, 0, &swift());
    }
    let baseline = m.sim.run();

    let mut degrade = FaultSchedule::new();
    degrade.degrade(
        5,
        0,
        Time::from_us(50),
        Time::from_us(350),
        0.25,
        Time::from_us(2),
    );
    let reference = run_incast(
        SchedKind::Binary,
        degrade.clone(),
        &swift(),
        strict_audit(),
        None,
    );
    assert_eq!(reference.completion_rate(), 1.0, "degradation never drops");
    assert_eq!(reference.counters.fault_link_drops, 0);
    let last = |r: &SimResult| r.records.iter().filter_map(|x| x.finish).max().unwrap();
    assert!(
        last(&reference) > last(&baseline),
        "quarter-rate epoch must delay completion ({} vs {})",
        last(&reference),
        last(&baseline)
    );
    for sched in BACKENDS {
        let got = run_incast(sched, degrade.clone(), &swift(), strict_audit(), None);
        assert_bit_identical(&reference, &got, &format!("degrade/{sched:?}"));
    }
}

#[test]
fn storm_regime_is_bit_identical_and_audit_clean() {
    // Pin pause on the bottleneck egress for 200 µs. A single paused
    // port cannot form a wait-for cycle, so the deadlock monitor must
    // stay silent; flows finish once the storm lifts.
    let cc = CcSpec::PrioPlusSwift {
        policy: PrioPlusPolicy::paper_default(4),
    };
    let mut storm = FaultSchedule::new();
    storm.pause_storm(5, 0, 0, Time::from_us(50), Time::from_us(250));
    let reference = run_incast(SchedKind::Binary, storm.clone(), &cc, strict_audit(), None);
    assert_eq!(reference.completion_rate(), 1.0, "storm release must drain");
    assert_eq!(reference.counters.fault_events, 2);
    for sched in BACKENDS {
        let got = run_incast(sched, storm.clone(), &cc, strict_audit(), None);
        assert_bit_identical(&reference, &got, &format!("storm/{sched:?}"));
    }
}

#[test]
fn random_flap_fleet_is_audit_clean_and_repeatable() {
    // Seed-driven flap storms over every access link, receiver side
    // included (so ACK/control loss is exercised too). Completion is not
    // guaranteed under arbitrary flapping; conservation is.
    let links: Vec<(u32, u16)> = (0..=4).map(|p| (5, p as u16)).collect();
    for seed in [3u64, 17, 0xB0B] {
        let sched = FaultSchedule::random_flaps(
            &links,
            seed,
            Time::from_ms(2),
            Time::from_us(300),
            Time::from_us(40),
        );
        assert!(!sched.is_empty(), "seed {seed}: schedule must flap");
        let a = run_incast(
            SchedKind::Binary,
            sched.clone(),
            &swift(),
            strict_audit(),
            None,
        );
        assert!(a.counters.fault_events > 0, "seed {seed}: no fault applied");
        let b = run_incast(SchedKind::Calendar, sched, &swift(), strict_audit(), None);
        assert_bit_identical(&a, &b, &format!("random flaps seed {seed}"));
    }
}

#[test]
fn fault_drop_unaccounted_buggify_is_caught_by_counter_identity() {
    // The buggify counts a fault drop in `SimCounters` but hides it from
    // the audit ledger; the counter identity (`drops + fault_link_drops
    // == audited dropped packets`) must flag the divergence.
    let res = run_incast(
        SchedKind::Binary,
        flap_schedule(),
        &swift(),
        detect_audit(),
        Some(Buggify::FaultDropUnaccounted),
    );
    assert!(
        res.counters.fault_link_drops > 0,
        "scenario must actually fault-drop"
    );
    assert!(
        kinds(&res).contains(&ViolationKind::CounterMismatch),
        "unaccounted fault drop must break the counter identity: {:?}",
        res.audit.as_ref().unwrap().violations
    );
}

/// Build the 5-switch ring carrying five clockwise two-hop flows (host
/// `i` → host `(i+2) % 5`). Every ring link carries exactly two flows
/// (2× oversubscription), so transit queues hold packets throughout.
/// Hosts are nodes `0..5`, switch `5 + i` serves host `i` on its port 0.
fn ring_sim(faults: FaultSchedule) -> Sim {
    let topo = Topology::ring(5, Rate::from_gbps(100), Time::from_us(3));
    let cfg = SimConfig {
        num_prios: 1,
        end_time: Time::from_ms(2),
        seed: 7,
        trace_flows: false,
        faults: Some(faults),
        ..Default::default()
    };
    let mut sim = Sim::new(&topo, cfg, SwitchConfig::default());
    sim.enable_audit_with(detect_audit());
    let cc = CcSpec::D2tcp {
        deadline_factor: None,
    };
    for i in 0..5u32 {
        let spec = FlowSpec::new(i, (i + 2) % 5, 8_000_000, Time::ZERO);
        sim.add_flow(spec, |p| cc.make(p, Time::ZERO));
    }
    sim
}

/// Switch `5 + i`'s egress port toward its clockwise neighbor. Ports are
/// numbered in link insertion order — host link first, then the ring
/// links in `connect(sw[i], sw[i+1])` order — so switch 0's clockwise
/// port is 1 (its counter-clockwise link is added last), while every
/// other switch receives its counter-clockwise link (as `sw[i+1]`)
/// before its clockwise one.
fn cw_port(i: u32) -> u16 {
    if i == 0 {
        1
    } else {
        2
    }
}

#[test]
fn constructed_pause_cycle_is_flagged_as_deadlock() {
    // Storm every clockwise inter-switch egress: each paused egress
    // holds transit packets that entered over the previous ring link,
    // whose resume is in turn blocked — the classic circular buffer
    // dependency. The monitor must flag it exactly as `PfcDeadlock`.
    let mut storm = FaultSchedule::new();
    for i in 0..5u32 {
        storm.pause_storm(5 + i, cw_port(i), 0, Time::from_us(100), Time::from_ms(1));
    }
    let res = ring_sim(storm).run();
    let report = res.audit.as_ref().expect("audit enabled");
    assert!(
        kinds(&res).contains(&ViolationKind::PfcDeadlock),
        "full-ring storm must be flagged: {:?}",
        report.violations
    );
    let v = report
        .violations
        .iter()
        .find(|v| v.kind == ViolationKind::PfcDeadlock)
        .unwrap();
    assert!(
        v.detail.contains("cycle"),
        "deadlock report names the cycle: {}",
        v.detail
    );
}

#[test]
fn acyclic_pause_pattern_is_not_flagged() {
    // The same storm on only three of five clockwise egresses: the
    // wait-for chain 5→6→7 ends at an unpaused port, so there is no
    // cycle and the monitor must stay silent.
    let mut storm = FaultSchedule::new();
    for i in 0..3u32 {
        storm.pause_storm(5 + i, cw_port(i), 0, Time::from_us(100), Time::from_ms(1));
    }
    let res = ring_sim(storm).run();
    assert!(
        !kinds(&res).contains(&ViolationKind::PfcDeadlock),
        "acyclic pause pattern misflagged: {:?}",
        res.audit.as_ref().unwrap().violations
    );
}

#[test]
fn deep_chain_int_path_spills_and_survives_a_mid_chain_flap() {
    // Twelve switches between the two hosts: HPCC's INT path exceeds the
    // 8-hop inline capacity on every data packet, exercising the spill
    // representation end-to-end. A mid-chain flap drops in-flight
    // packets (and INT-carrying ACKs); the flow must still complete with
    // a clean audit. Hosts are nodes 0 and 1; switches are 2..14 in
    // chain order, and each switch's port toward the next hop is its
    // second-added port.
    let topo = Topology::chain(12, Rate::from_gbps(100), Time::from_us(1));
    let mut flap = FaultSchedule::new();
    flap.link_flap(7, 1, Time::from_us(80), Time::from_us(200));
    for sched in BACKENDS {
        let cfg = SimConfig {
            num_prios: 1,
            end_time: Time::from_ms(20),
            seed: 11,
            trace_flows: false,
            sched,
            faults: Some(flap.clone()),
            ..Default::default()
        };
        let switch = SwitchConfig {
            int_enabled: true,
            ..SwitchConfig::default()
        };
        let mut sim = Sim::new(&topo, cfg, switch);
        sim.enable_audit_with(strict_audit());
        let spec = FlowSpec::new(0, 1, 2_000_000, Time::ZERO);
        sim.add_flow(spec, |p| CcSpec::Hpcc.make(p, Time::ZERO));
        let res = sim.run();
        assert_eq!(
            res.completion_rate(),
            1.0,
            "{sched:?}: 12-hop HPCC flow must survive the flap"
        );
        assert!(
            res.counters.fault_link_drops + res.counters.fault_ctrl_drops > 0,
            "{sched:?}: the flap must catch traffic mid-chain"
        );
    }
}

#[test]
fn fault_runs_are_deterministic_across_repeats() {
    // The most state-heavy regime (random flaps over every link) run
    // twice with identical inputs must match bit for bit.
    let links: Vec<(u32, u16)> = (0..=4).map(|p| (5, p as u16)).collect();
    let sched = FaultSchedule::random_flaps(
        &links,
        21,
        Time::from_ms(2),
        Time::from_us(250),
        Time::from_us(50),
    );
    let a = run_incast(
        SchedKind::Quad,
        sched.clone(),
        &swift(),
        strict_audit(),
        None,
    );
    let b = run_incast(SchedKind::Quad, sched, &swift(), strict_audit(), None);
    assert_bit_identical(&a, &b, "repeat run");
}
