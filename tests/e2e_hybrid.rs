//! End-to-end validation of the hybrid packet/fluid network model.
//!
//! Three claims are established here:
//!
//! 1. **Zero background is free**: with an empty background trace the
//!    hybrid machinery (fluid port registration, admission stamps, dequeue
//!    charge accounting, ECN occupancy) is a provable no-op — the Fluid
//!    run is bit-identical to the pure packet run, record for record and
//!    counter for counter, under every scheduler backend.
//! 2. **Fluid mass is conserved**: across a fleet of random background
//!    seeds and loads, the audit's `injected == drained + backlog`
//!    invariant holds on every fluid-loaded port with the deep scan run
//!    on every event.
//! 3. **The audit detects**: the `FluidDrainLeak` buggify (drained mass
//!    under-counted by one byte per settled segment) produces a
//!    `FluidConservation` violation, pinning the check's false-negative
//!    rate at zero for the fault we can inject.

use experiments::hybrid::{HybridMode, HybridOutcome, HybridScenario};
use netsim::{AuditConfig, Buggify, SchedKind, ViolationKind};
use simcore::Time;

/// Bit-exact equality of two runs: every flow record field and every
/// counter. All record fields are integer-backed (`Time` is picoseconds),
/// so `assert_eq!` is exact, not approximate.
fn assert_bit_identical(a: &HybridOutcome, b: &HybridOutcome, what: &str) {
    let (ra, rb) = (&a.result.records, &b.result.records);
    assert_eq!(ra.len(), rb.len(), "{what}: record count");
    for (i, (x, y)) in ra.iter().zip(rb.iter()).enumerate() {
        assert_eq!(x.flow, y.flow, "{what}: record {i} flow id");
        assert_eq!(x.src, y.src, "{what}: record {i} src");
        assert_eq!(x.dst, y.dst, "{what}: record {i} dst");
        assert_eq!(x.size, y.size, "{what}: record {i} size");
        assert_eq!(x.start, y.start, "{what}: record {i} start");
        assert_eq!(x.finish, y.finish, "{what}: record {i} finish");
        assert_eq!(x.delivered, y.delivered, "{what}: record {i} delivered");
        assert_eq!(
            x.retransmits, y.retransmits,
            "{what}: record {i} retransmits"
        );
        assert_eq!(x.base_rtt, y.base_rtt, "{what}: record {i} base_rtt");
    }
    let (ca, cb) = (&a.result.counters, &b.result.counters);
    assert_eq!(ca.events, cb.events, "{what}: events");
    assert_eq!(ca.data_delivered, cb.data_delivered, "{what}: delivered");
    assert_eq!(ca.pfc_pauses, cb.pfc_pauses, "{what}: pfc_pauses");
    assert_eq!(ca.pfc_resumes, cb.pfc_resumes, "{what}: pfc_resumes");
    assert_eq!(ca.drops, cb.drops, "{what}: drops");
    assert_eq!(ca.ecn_marks, cb.ecn_marks, "{what}: ecn_marks");
    assert_eq!(
        ca.max_buffer_used, cb.max_buffer_used,
        "{what}: max_buffer_used"
    );
}

/// Every scheduler backend, so the differential also covers the calendar
/// default promoted in this change.
const BACKENDS: [SchedKind; 3] = [SchedKind::Binary, SchedKind::Quad, SchedKind::Calendar];

#[test]
fn zero_background_incast_is_bit_identical_to_pure_packet() {
    for sched in BACKENDS {
        let mut sc = HybridScenario::incast(0.0);
        sc.sched = sched;
        assert!(sc.bg_trace().is_empty(), "zero load must yield no flows");
        let p = sc.run(HybridMode::PacketRef, None);
        let f = sc.run(HybridMode::Fluid, None);
        assert_eq!(f.result.counters.fluid_bytes_injected, 0);
        assert_eq!(f.result.counters.fluid_flows_started, 0);
        assert_bit_identical(&p, &f, &format!("incast/{sched:?}"));
    }
}

#[test]
fn zero_background_websearch_is_bit_identical_to_pure_packet() {
    for sched in BACKENDS {
        let mut sc = HybridScenario::websearch(0.0);
        sc.sched = sched;
        let p = sc.run(HybridMode::PacketRef, None);
        let f = sc.run(HybridMode::Fluid, None);
        assert_bit_identical(&p, &f, &format!("websearch/{sched:?}"));
    }
}

/// The strict audit configuration: deep scan (including per-port fluid
/// conservation) on every event, panicking at the first violation so a
/// failure points at the exact event.
fn strict_audit() -> AuditConfig {
    AuditConfig {
        panic_on_violation: true,
        deep_every: 1,
        ..AuditConfig::default()
    }
}

#[test]
fn fluid_conservation_holds_across_random_seeds() {
    // A fleet of (load, seed) points; short horizon keeps the fleet cheap
    // while still crossing many injection-end/backlog-empty epochs.
    for load in [0.3, 0.5, 0.7] {
        for bg_seed in [7, 91, 1234, 0xDEAD] {
            let mut sc = HybridScenario::incast(load);
            sc.fg_senders = 4;
            sc.end = Time::from_ms(2);
            sc.bg_seed = bg_seed;
            let out = sc.run(HybridMode::Fluid, Some(strict_audit()));
            let audit = out.result.audit.as_ref().expect("audit enabled");
            assert_eq!(
                audit.violations.len(),
                0,
                "load {load} seed {bg_seed}: {:?}",
                audit.violations
            );
            assert!(
                out.result.counters.fluid_bytes_injected > 0,
                "load {load} seed {bg_seed}: fleet point must exercise the fluid path"
            );
        }
    }
}

#[test]
fn fluid_conservation_holds_under_websearch_foreground() {
    let mut sc = HybridScenario::websearch(0.5);
    sc.end = Time::from_ms(4);
    let out = sc.run(HybridMode::Fluid, Some(strict_audit()));
    let audit = out.result.audit.as_ref().expect("audit enabled");
    assert_eq!(audit.violations.len(), 0, "{:?}", audit.violations);
}

#[test]
fn buggified_fluid_leak_is_caught_by_the_audit() {
    let mut sc = HybridScenario::incast(0.5);
    sc.fg_senders = 4;
    sc.end = Time::from_ms(2);
    sc.switch.buggify = Some(Buggify::FluidDrainLeak);
    let audit = AuditConfig {
        deep_every: 1,
        ..AuditConfig::default()
    };
    let out = sc.run(HybridMode::Fluid, Some(audit));
    let report = out.result.audit.as_ref().expect("audit enabled");
    assert!(
        report
            .violations
            .iter()
            .any(|v| v.kind == ViolationKind::FluidConservation),
        "FluidDrainLeak must trip FluidConservation; got {:?}",
        report.violations
    );
}
