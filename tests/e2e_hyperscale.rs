//! Hyperscale end-to-end suite.
//!
//! Pins the three mechanisms the hyperscale scenario layer rests on:
//!
//! - **Sketch-vs-exact differential fleet**: streaming quantile sketches
//!   track an exact oracle within the documented relative-error bound
//!   (1/256), both on synthetic streams across distribution shapes and on
//!   real simulator output (streaming mode vs the per-flow records of the
//!   identical run);
//! - **Cross-backend bit-identity**: the full streaming state (every
//!   sketch bucket, every counter) is bit-identical across the binary,
//!   quad, and calendar scheduler backends;
//! - **Flow-state reclamation**: completed flows release their slab slot
//!   (occupancy returns to zero in drained runs), and the audit deep
//!   scan's flow-state sweep catches the injected
//!   [`Buggify::FlowReclaimLeak`] regression.

use experiments::hyperscale::{run as hyper_run, HyperScheme, HyperTopo, HyperscaleConfig};
use netsim::{
    AuditConfig, Buggify, FlowSpec, Sim, SimConfig, SimResult, SwitchConfig, Topology,
    ViolationKind,
};
use simcore::{QuantileSketch, SchedKind, SimRng, Time};
use transport::{CcSpec, PrioPlusPolicy};
use workloads::IncastMix;

/// The sketch's guaranteed relative error: buckets are 2^-7-wide in
/// log-space and quantiles report the bucket midpoint, so the reported
/// value is within `value/256` of the exact nearest-rank sample (exact
/// below 128). The `+1` absorbs integer midpoint rounding.
fn within_sketch_bound(sketch: u64, exact: u64) -> bool {
    let tol = exact / 256 + 1;
    sketch.abs_diff(exact) <= tol
}

/// Exact nearest-rank quantile (the definition `QuantileSketch::quantile`
/// mirrors): the sample of rank `clamp(ceil(p/100 * n), 1, n)`.
fn exact_quantile(sorted: &[u64], p: f64) -> u64 {
    assert!(!sorted.is_empty());
    let n = sorted.len();
    let rank = ((p / 100.0 * n as f64).ceil() as usize).clamp(1, n);
    sorted[rank - 1]
}

#[test]
fn sketch_differential_fleet_across_distributions() {
    // One generator per distribution shape the scenarios produce: uniform
    // RTT-scale values, heavy-tailed sizes, constant bursts, bimodal
    // short/long mixes, and tiny exact-range values.
    type GenFn = Box<dyn Fn(&mut SimRng) -> u64>;
    let dists: Vec<(&str, GenFn)> = vec![
        ("uniform", Box::new(|r| r.next() % 1_000_000_000)),
        (
            "heavy_tail",
            Box::new(|r| {
                let e = r.next() % 30;
                (1u64 << e) + r.next() % (1 << e).max(1)
            }),
        ),
        ("constant", Box::new(|_| 123_456_789)),
        (
            "bimodal",
            Box::new(|r| {
                if r.next() % 10 < 8 {
                    10_000 + r.next() % 1000
                } else {
                    50_000_000 + r.next() % 1_000_000
                }
            }),
        ),
        ("tiny_exact", Box::new(|r| r.next() % 128)),
    ];
    for (name, gen) in &dists {
        for seed in 0..4u64 {
            let mut rng = SimRng::new(0xD1FF ^ seed);
            let mut sketch = QuantileSketch::new();
            let mut exact = Vec::new();
            let n = 2_000 + (seed as usize) * 777;
            for _ in 0..n {
                let v = gen(&mut rng);
                sketch.add(v);
                exact.push(v);
            }
            exact.sort_unstable();
            for p in [50.0, 90.0, 99.0] {
                let s = sketch.quantile(p).expect("non-empty");
                let e = exact_quantile(&exact, p);
                assert!(
                    within_sketch_bound(s, e),
                    "{name} seed {seed} p{p}: sketch {s} vs exact {e}"
                );
            }
            assert_eq!(sketch.count(), n as u64, "{name} seed {seed}");
            assert_eq!(sketch.min(), Some(exact[0]), "{name} seed {seed}");
            assert_eq!(sketch.max(), Some(exact[n - 1]), "{name} seed {seed}");
        }
    }
}

/// A small closed scenario on a k=4 fat-tree, parameterized on streaming
/// mode and scheduler backend: 48 WebSearch-ish flows across all hosts.
fn small_fabric_run(streaming: bool, sched: SchedKind) -> SimResult {
    let topo = Topology::fat_tree(4, simcore::Rate::from_gbps(100), Time::from_us(1));
    let hosts = topo.hosts.clone();
    let cfg = SimConfig {
        num_prios: 1,
        end_time: Time::from_ms(20),
        seed: 7,
        sched,
        streaming_stats: streaming,
        ..Default::default()
    };
    let mut sim = Sim::new(&topo, cfg, SwitchConfig::default());
    let mut rng = SimRng::new(99);
    let cc = CcSpec::PrioPlusSwift {
        policy: PrioPlusPolicy {
            probe: false,
            ..PrioPlusPolicy::paper_default(4)
        },
    };
    for i in 0..48u64 {
        let src = rng.choose_index(hosts.len());
        let mut dst = rng.choose_index(hosts.len() - 1);
        if dst >= src {
            dst += 1;
        }
        let size = 20_000 + rng.next() % 500_000;
        let start = Time::from_us(rng.next() % 200);
        let spec = FlowSpec {
            src: hosts[src],
            dst: hosts[dst],
            size,
            start,
            phys_prio: 0,
            virt_prio: (i % 4) as u8,
            tag: i,
        };
        sim.add_flow(spec, |p| cc.make(p, start));
    }
    sim.run()
}

#[test]
fn streaming_sketches_match_exact_records_of_the_same_run() {
    let exact_run = small_fabric_run(false, SchedKind::Binary);
    let stream_run = small_fabric_run(true, SchedKind::Binary);
    // Same simulation either way: streaming only changes result assembly.
    assert_eq!(exact_run.counters.events, stream_run.counters.events);
    assert!(stream_run.records.is_empty(), "streaming keeps no records");
    assert!(exact_run.streaming.is_none());
    let st = stream_run.streaming.as_deref().expect("streaming on");

    let mut fct_ps: Vec<u64> = exact_run
        .finished()
        .map(|r| (r.finish.expect("finished") - r.start).as_ps())
        .collect();
    assert!(!fct_ps.is_empty());
    fct_ps.sort_unstable();
    assert_eq!(st.finished, fct_ps.len() as u64);
    let delivered: u64 = exact_run.finished().map(|r| r.size).sum();
    assert_eq!(st.finished_bytes, delivered);
    for p in [50.0, 90.0, 99.0] {
        let s = st.fct_ps.quantile(p).expect("non-empty");
        let e = exact_quantile(&fct_ps, p);
        assert!(
            within_sketch_bound(s, e),
            "p{p}: sketch {s} ps vs exact {e} ps"
        );
    }
    // Per-virtual-class sketch counts add up to the total.
    let by_virt: u64 = st.fct_ps_by_virt.iter().map(|s| s.count()).sum();
    assert_eq!(by_virt, st.finished);
}

#[test]
fn streaming_state_is_bit_identical_across_scheduler_backends() {
    let runs: Vec<SimResult> = [SchedKind::Binary, SchedKind::Quad, SchedKind::Calendar]
        .into_iter()
        .map(|k| small_fabric_run(true, k))
        .collect();
    let fp0 = runs[0].streaming.as_deref().expect("streaming on").fingerprint();
    for (i, r) in runs.iter().enumerate() {
        let st = r.streaming.as_deref().expect("streaming on");
        assert_eq!(st.fingerprint(), fp0, "backend {i} diverged");
        assert_eq!(r.counters.events, runs[0].counters.events, "backend {i}");
        assert_eq!(
            r.counters.flows_reclaimed, runs[0].counters.flows_reclaimed,
            "backend {i}"
        );
        assert_eq!(
            r.counters.flow_live_peak, runs[0].counters.flow_live_peak,
            "backend {i}"
        );
        // Bucket-level identity, not just the fingerprint.
        assert_eq!(
            st.fct_ps.bucket_counts(),
            runs[0].streaming.as_deref().expect("on").fct_ps.bucket_counts(),
            "backend {i}"
        );
    }
}

#[test]
fn open_loop_hyperscale_runs_across_backends_bit_identically() {
    // The full stack — open-loop injection, slab reclamation, streaming
    // sketches — on the downscaled hyperscale config, once per backend.
    let run_with = |sched: SchedKind| {
        let cfg = HyperscaleConfig {
            duration: Time::from_us(500),
            sched,
            ..HyperscaleConfig::quick(HyperScheme::PrioPlus)
        };
        hyper_run(&cfg)
    };
    let base = run_with(SchedKind::Binary);
    assert!(base.flows_total > 50, "scenario too small to be meaningful");
    assert!(base.finished > 0);
    // Reclamation happens when the *sender* sees the final ACK, one
    // half-RTT after the receiver counts the flow finished — so at the
    // end-time cutoff a handful of finished flows can still hold state.
    assert!(base.flows_reclaimed <= base.finished);
    assert!(
        base.finished - base.flows_reclaimed <= base.flow_live_peak,
        "unreclaimed gap {} exceeds peak concurrency {}",
        base.finished - base.flows_reclaimed,
        base.flow_live_peak
    );
    assert!(base.flows_reclaimed > base.finished * 9 / 10);
    // Peak live state must be far below the trace length once the run is
    // long enough to cycle flows through completion.
    assert!(
        base.flow_live_peak < base.flows_total,
        "no reclamation visible: peak {} of {} flows",
        base.flow_live_peak,
        base.flows_total
    );
    for sched in [SchedKind::Quad, SchedKind::Calendar] {
        let r = run_with(sched);
        assert_eq!(r.streaming_fingerprint, base.streaming_fingerprint, "{sched:?}");
        assert_eq!(r.events, base.events, "{sched:?}");
        assert_eq!(r.flows_total, base.flows_total, "{sched:?}");
        assert_eq!(r.flow_live_peak, base.flow_live_peak, "{sched:?}");
    }
}

#[test]
fn hyperscale_runs_on_the_three_tier_wan_fabric() {
    let cfg = HyperscaleConfig {
        topo: HyperTopo::ThreeTierWan(netsim::ThreeTierWanSpec::tiny()),
        duration: Time::from_us(500),
        incast: Some(IncastMix {
            period: Time::from_us(100),
            fanin: 4,
            bytes: 10_000,
        }),
        ..HyperscaleConfig::quick(HyperScheme::Dctcp)
    };
    let r = hyper_run(&cfg);
    assert!(r.flows_total > 0);
    assert!(r.finished > 0);
    assert!(r.fct_us.p99 >= r.fct_us.p50);
}

/// Closed two-host run where every flow finishes well before `end_time`,
/// so the slab must drain completely.
fn drained_run(buggify: Option<Buggify>) -> SimResult {
    let topo = Topology::fat_tree(4, simcore::Rate::from_gbps(100), Time::from_us(1));
    let hosts = topo.hosts.clone();
    let cfg = SimConfig {
        num_prios: 1,
        end_time: Time::from_ms(50),
        seed: 3,
        ..Default::default()
    };
    let sw = SwitchConfig {
        buggify,
        ..Default::default()
    };
    let mut sim = Sim::new(&topo, cfg, sw);
    sim.enable_audit_with(AuditConfig {
        panic_on_violation: false,
        deep_every: 16,
        ..Default::default()
    });
    let cc = CcSpec::Swift {
        queuing: Time::from_us(4),
        scaling: false,
    };
    for i in 0..12u64 {
        let spec = FlowSpec::new(
            hosts[i as usize % 4],
            hosts[4 + i as usize % 4],
            200_000,
            Time::from_us(i * 10),
        );
        sim.add_flow(spec, |p| cc.make(p, Time::from_us(i * 10)));
    }
    sim.run()
}

#[test]
fn flow_slab_drains_to_zero_when_every_flow_completes() {
    let res = drained_run(None);
    assert_eq!(res.completion_rate(), 1.0);
    let c = &res.counters;
    assert_eq!(c.flows_total, 12);
    assert_eq!(
        c.flows_reclaimed, c.flows_total,
        "every completed flow must release its slab slot"
    );
    // Up-front registration allocates every slab slot before the first
    // completion, so peak == total here; the open-loop test above is the
    // one that pins peak << total. What matters in the closed case is the
    // *drain*: reclaimed == total means end-of-run occupancy is zero.
    assert_eq!(c.flow_slab_slots, c.flow_live_peak, "slots beyond peak mean slot leaks");
    assert!(c.flow_live_bytes_peak > 0);
    let report = res.audit.as_ref().expect("audit enabled");
    assert_eq!(
        report.total_violations, 0,
        "clean run must stay clean: {:?}",
        report.violations
    );
}

#[test]
fn injected_reclamation_leak_is_caught_by_the_audit_sweep() {
    let res = drained_run(Some(Buggify::FlowReclaimLeak));
    let c = &res.counters;
    assert_eq!(c.flows_reclaimed, 0, "buggify must suppress reclamation");
    let report = res.audit.as_ref().expect("audit enabled");
    assert!(
        report
            .violations
            .iter()
            .any(|v| v.kind == ViolationKind::FlowStateLeak),
        "leak not caught: {:?}",
        report.violations
    );
    // The leak is observational: flows still complete correctly.
    assert_eq!(res.completion_rate(), 1.0);
}

#[test]
fn retransmit_counts_survive_reclamation() {
    // Lossy small-buffer run: drops force retransmissions; the snapshot
    // taken at slab release must preserve the per-flow retransmit count in
    // the records.
    let topo = Topology::fat_tree(4, simcore::Rate::from_gbps(100), Time::from_us(1));
    let hosts = topo.hosts.clone();
    let cfg = SimConfig {
        num_prios: 1,
        end_time: Time::from_ms(50),
        seed: 5,
        ..Default::default()
    };
    let sw = SwitchConfig {
        pfc_enabled: false,
        buffer_bytes: 150_000,
        ..Default::default()
    };
    let mut sim = Sim::new(&topo, cfg, sw);
    let cc = CcSpec::Swift {
        queuing: Time::from_us(4),
        scaling: false,
    };
    for i in 0..8u64 {
        let spec = FlowSpec::new(hosts[i as usize % 8], hosts[(i as usize + 8) % 16], 1_000_000, Time::ZERO);
        sim.add_flow(spec, |p| cc.make(p, Time::ZERO));
    }
    let res = sim.run();
    assert!(res.counters.drops > 0, "scenario must actually drop");
    assert_eq!(res.completion_rate(), 1.0);
    let retx: u64 = res.records.iter().map(|r| r.retransmits).sum();
    assert!(retx > 0, "drops without retransmits recorded");
    assert_eq!(res.counters.flows_reclaimed, 8);
}
