//! PFC (lossless) and lossy-mode end-to-end behavior.

use experiments::micro::{Micro, MicroEnv};
use netsim::{AckPriority, FlowSpec, Sim, SimConfig, SwitchConfig, Topology};
use simcore::{Rate, Time};
use transport::CcSpec;

/// An uncontrolled incast into a small-buffer switch: PFC must engage and
/// prevent every drop; all data still arrives.
#[test]
fn pfc_prevents_drops_under_blast_incast() {
    let mut m = Micro::build(&MicroEnv {
        senders: 12,
        end: Time::from_ms(20),
        trace: false,
        switch: SwitchConfig {
            buffer_bytes: 2_000_000, // small relative to 12 blasting senders
            pfc_lossless_prios: 1,
            // Headroom must absorb 2*prop*rate (= 75 KB at 3us/100G) plus
            // an MTU per port after a pause lands — exactly why headroom
            // limits the number of lossless priorities (§2.2).
            pfc_headroom_bytes: 80_000,
            ..Default::default()
        },
        ..Default::default()
    });
    for s in 1..=12 {
        m.add_flow(s, 2_000_000, Time::ZERO, 0, 0, &CcSpec::Blast);
    }
    let res = m.sim.run();
    assert_eq!(res.counters.drops, 0, "lossless mode must not drop");
    assert!(res.counters.pfc_pauses > 0, "PFC should have engaged");
    assert!(
        res.counters.pfc_resumes > 0,
        "PFC should also have released"
    );
    assert_eq!(res.completion_rate(), 1.0, "all flows complete");
    assert!(
        res.counters.max_buffer_used <= 2_000_000,
        "buffer exceeded its physical capacity: {}",
        res.counters.max_buffer_used
    );
}

/// The same incast with PFC disabled: drops happen, IRN-style recovery
/// retransmits, and the flows still complete.
#[test]
fn lossy_mode_drops_and_recovers() {
    let mut m = Micro::build(&MicroEnv {
        senders: 12,
        end: Time::from_ms(40),
        trace: false,
        switch: SwitchConfig {
            buffer_bytes: 500_000,
            pfc_enabled: false,
            ..Default::default()
        },
        ..Default::default()
    });
    for s in 1..=12 {
        m.add_flow(s, 1_000_000, Time::ZERO, 0, 0, &CcSpec::Blast);
    }
    let res = m.sim.run();
    assert!(res.counters.drops > 0, "tiny buffer + blast must drop");
    let rtx: u64 = res.records.iter().map(|r| r.retransmits).sum();
    assert!(rtx > 0, "retransmissions must recover the drops");
    assert_eq!(
        res.completion_rate(),
        1.0,
        "all flows must complete despite loss"
    );
    for r in &res.records {
        assert_eq!(r.delivered, r.size, "every byte delivered exactly once");
    }
}

/// Swift under lossy mode: congestion control keeps the queue below the
/// drop threshold, so (almost) nothing is lost even without PFC.
#[test]
fn swift_rarely_drops_in_lossy_mode() {
    let mut m = Micro::build(&MicroEnv {
        senders: 8,
        end: Time::from_ms(20),
        trace: false,
        switch: SwitchConfig {
            buffer_bytes: 2_000_000,
            pfc_enabled: false,
            ..Default::default()
        },
        ..Default::default()
    });
    let swift = CcSpec::Swift {
        queuing: Time::from_us(4),
        scaling: false,
    };
    for s in 1..=8 {
        m.add_flow(s, 5_000_000, Time::ZERO, 0, 0, &swift);
    }
    let res = m.sim.run();
    assert_eq!(res.completion_rate(), 1.0);
    // Line-rate initial windows clip a little at the very start, but steady
    // state must be loss-free: under 1% of packets overall.
    let total_pkts: u64 = res.records.iter().map(|r| r.size / 1000).sum();
    assert!(
        res.counters.drops < total_pkts / 100,
        "Swift should avoid drops: {} of {total_pkts}",
        res.counters.drops
    );
}

/// Physical priority isolation: with two physical queues, high-priority
/// traffic is served strictly first through the bottleneck.
#[test]
fn physical_priorities_isolate() {
    let mut m = Micro::build(&MicroEnv {
        senders: 2,
        end: Time::from_ms(8),
        num_prios: 2,
        trace: true,
        ..Default::default()
    });
    let swift = CcSpec::Swift {
        queuing: Time::from_us(4),
        scaling: false,
    };
    let lo = m.add_flow(1, 50_000_000, Time::ZERO, 0, 0, &swift);
    let hi = m.add_flow(2, 25_000_000, Time::from_ms(1), 1, 1, &swift);
    let res = m.sim.run();
    let hi_fct = res.records[hi as usize].fct().expect("hi done").as_us_f64();
    assert!(
        hi_fct < 2_600.0,
        "physical high priority too slow: {hi_fct}"
    );
    let lo_trace = &res.traces[&lo];
    let tput = lo_trace.throughput.as_ref().unwrap().series_gbps();
    let during = tput.window_mean(1_300.0, 2_500.0).unwrap_or(0.0);
    assert!(
        during < 15.0,
        "low physical priority got {during} Gbps during contention"
    );
}

/// ACKs in the control queue vs in the data queue (PrioPlus*, Fig 16):
/// both configurations must deliver all traffic.
#[test]
fn ack_priority_modes_work() {
    for mode in [AckPriority::Control, AckPriority::SameAsData] {
        let topo = Topology::single_switch(2, Rate::from_gbps(100), Time::from_us(3));
        let cfg = SimConfig {
            ack_prio: mode,
            end_time: Time::from_ms(10),
            ..Default::default()
        };
        let mut sim = Sim::new(&topo, cfg, SwitchConfig::default());
        let swift = CcSpec::Swift {
            queuing: Time::from_us(4),
            scaling: false,
        };
        for s in 1..=2u32 {
            let spec = FlowSpec::new(s, 0, 5_000_000, Time::ZERO);
            sim.add_flow(spec, |p| swift.make(p, Time::ZERO));
        }
        let res = sim.run();
        assert_eq!(res.completion_rate(), 1.0, "mode {mode:?}");
    }
}
