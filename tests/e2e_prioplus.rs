//! End-to-end PrioPlus behavior: the paper's three objectives on a live
//! bottleneck — O1 strict multi-priority, O2 work conservation, and
//! fluctuation management.

use experiments::micro::{Micro, MicroEnv};
use netsim::NoiseModel;
use simcore::Time;
use transport::{CcSpec, PrioPlusPolicy};

fn pp(classes: u8) -> CcSpec {
    CcSpec::PrioPlusSwift {
        policy: PrioPlusPolicy::paper_default(classes),
    }
}

/// O1: when a high-priority flow is active, a low-priority flow must yield
/// (nearly) all bandwidth; O2: after the high-priority flow finishes, the
/// low-priority flow must ramp back up quickly.
#[test]
fn strict_priority_and_reclaim() {
    let mut m = Micro::build(&MicroEnv {
        senders: 2,
        end: Time::from_ms(6),
        trace: true,
        noise: NoiseModel::testbed(),
        ..Default::default()
    });
    let cc = pp(2);
    // Low-priority long flow starts first; high-priority flow runs
    // 1ms..~3ms (25 MB at 100G ~ 2ms alone).
    let lo = m.add_flow(1, 50_000_000, Time::ZERO, 0, 0, &cc);
    let hi = m.add_flow(2, 25_000_000, Time::from_ms(1), 0, 1, &cc);
    let res = m.sim.run();

    let hi_rec = &res.records[hi as usize];
    let hi_fct = hi_rec.fct().expect("high prio finishes").as_us_f64();
    // Alone it would take ~2000us + start-up; strict priority means it
    // should be close to that despite the low-priority flow.
    assert!(
        hi_fct < 2_600.0,
        "high-priority flow was not prioritized: {hi_fct}us"
    );

    // While the high-priority flow runs (1.3ms..2.5ms), the low-priority
    // goodput must be near zero.
    let lo_trace = &res.traces[&lo];
    let lo_tput = lo_trace.throughput.as_ref().unwrap().series_gbps();
    let during = lo_tput.window_mean(1_300.0, 2_500.0).unwrap_or(0.0);
    assert!(
        during < 8.0,
        "low-priority flow kept {during} Gbps during contention"
    );
    // Before contention it should have held the full link.
    let before = lo_tput.window_mean(300.0, 900.0).unwrap();
    assert!(
        before > 80.0,
        "low prio only {before} Gbps before contention"
    );
    // After the high-priority flow ends it must reclaim the bandwidth
    // within ~1ms (O2).
    let hi_end_us = hi_rec.finish.unwrap().as_us_f64();
    let after = lo_tput
        .window_mean(hi_end_us + 500.0, hi_end_us + 1_500.0)
        .unwrap_or(0.0);
    assert!(after > 70.0, "low prio reclaimed only {after} Gbps");
}

/// O2 alone: a single PrioPlus flow on an idle link must reach (near) full
/// utilization and finish close to ideal despite linear start.
#[test]
fn work_conservation_solo() {
    let mut m = Micro::build(&MicroEnv {
        senders: 1,
        end: Time::from_ms(8),
        trace: false,
        ..Default::default()
    });
    // Highest priority of 8: no probe, W_LS = 1 BDP.
    m.add_flow(1, 12_500_000, Time::ZERO, 0, 7, &pp(8));
    let res = m.sim.run();
    let fct = res.records[0].fct().expect("finishes").as_us_f64();
    // Ideal ~1012us; allow start-up slack.
    assert!(fct < 1_300.0, "solo PrioPlus flow too slow: {fct}us");
}

/// Probing keeps signal frequency with minimal bandwidth (§4.2.1): while
/// suspended, a low-priority flow sends only probes and those probes are a
/// negligible share of the link.
#[test]
fn suspended_flow_sends_probes_not_data() {
    let mut m = Micro::build(&MicroEnv {
        senders: 2,
        end: Time::from_ms(4),
        trace: true,
        ..Default::default()
    });
    let cc = pp(2);
    let lo = m.add_flow(1, 50_000_000, Time::ZERO, 0, 0, &cc);
    let _hi = m.add_flow(2, 50_000_000, Time::from_ms(1), 0, 1, &cc);
    let res = m.sim.run();
    assert!(res.counters.probes > 3, "no probing happened");
    // The low-priority flow must deliver almost nothing during contention.
    let lo_trace = &res.traces[&lo];
    let tput = lo_trace.throughput.as_ref().unwrap().series_gbps();
    let during = tput.window_mean(1_500.0, 3_800.0).unwrap_or(0.0);
    assert!(during < 5.0, "suspended flow delivered {during} Gbps");
}

/// Flow cardinality estimation (§4.3.1): a large same-priority incast must
/// keep the delay near D_target instead of oscillating between empty and
/// over-limit (Fig 10b).
#[test]
fn incast_delay_stays_near_target() {
    let senders = 150;
    let mut m = Micro::build(&MicroEnv {
        senders,
        end: Time::from_ms(8),
        trace: false,
        noise: NoiseModel::testbed(),
        ..Default::default()
    });
    m.monitor_bottleneck_queue(Time::from_us(10));
    // All flows at priority 4 of 8: D_target = 12+20 = 32us, i.e. 250 KB of
    // queue at 100G.
    let cc = pp(8);
    for s in 1..=senders {
        m.add_flow(s, 3_000_000, Time::ZERO, 0, 4, &cc);
    }
    let res = m.sim.run();
    let (_, q) = &res.monitors[0];
    // After convergence, mean queue should be near 250 KB (20us above base).
    let mean = q.window_mean(3_000.0, 8_000.0).unwrap();
    assert!(
        (100_000.0..400_000.0).contains(&mean),
        "incast queue mean {mean} bytes, want ~250KB"
    );
    // Bandwidth must stay utilized (no synchronized collapse).
    let delivered: u64 = res.records.iter().map(|r| r.delivered).sum();
    let expected = 100e9 / 8.0 * 0.005; // ≥ 5ms of useful goodput in 8ms
    assert!(
        delivered as f64 > expected,
        "incast underutilized: {delivered} bytes"
    );
}

/// Eight adjacent priorities coexisting: every flow finishes eventually and
/// higher priorities finish no later than lower ones on average (Fig 10a
/// shape).
#[test]
fn eight_priorities_order_fcts() {
    let mut m = Micro::build(&MicroEnv {
        senders: 8,
        end: Time::from_ms(30),
        trace: false,
        noise: NoiseModel::testbed(),
        ..Default::default()
    });
    let cc = pp(8);
    // All start together, same size: strict priority should serialize them
    // roughly by priority.
    for s in 1..=8 {
        let prio = (s - 1) as u8;
        m.add_flow(s, 12_500_000, Time::ZERO, 0, prio, &cc);
    }
    let res = m.sim.run();
    let fct = |i: usize| -> f64 { res.records[i].fct().map(|t| t.as_us_f64()).unwrap_or(1e9) };
    // Highest priority (sender 8, prio 7) must be near solo speed.
    assert!(fct(7) < 2_000.0, "top priority too slow: {}", fct(7));
    // Lowest priority must be the last (or nearly last) to finish.
    let lowest = fct(0);
    let max_other = (1..8).map(fct).fold(0.0, f64::max);
    assert!(
        lowest >= max_other * 0.8,
        "lowest priority should finish around last: {lowest} vs {max_other}"
    );
    assert_eq!(res.completion_rate(), 1.0, "all flows must complete");
}
