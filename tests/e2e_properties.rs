//! Property-based end-to-end invariants: for arbitrary small workloads the
//! simulator must conserve bytes, never invert causality, and the PrioPlus
//! algorithm must respect its structural invariants.

use experiments::micro::{Micro, MicroEnv};
use netsim::NoiseModel;
use proptest::prelude::*;
use simcore::Time;
use transport::{CcSpec, PrioPlusPolicy};

fn run_micro(
    senders: usize,
    flows: Vec<(usize, u64, u64, u8)>, // (sender, size, start_us, virt_prio)
    cc: CcSpec,
    classes: u8,
    noise: bool,
    seed: u64,
) -> netsim::SimResult {
    let mut m = Micro::build(&MicroEnv {
        senders,
        end: Time::from_ms(50),
        trace: false,
        noise: if noise {
            NoiseModel::testbed()
        } else {
            NoiseModel::None
        },
        seed,
        ..Default::default()
    });
    for (s, size, start_us, vp) in flows {
        m.add_flow(
            s,
            size,
            Time::from_us(start_us),
            0,
            vp.min(classes - 1),
            &cc,
        );
    }
    m.sim.run()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12 })]

    /// Bytes are conserved and every finish time is causal (after start,
    /// not before serialization could possibly complete) under arbitrary
    /// Swift workloads.
    #[test]
    fn swift_conserves_bytes_and_causality(
        sizes in proptest::collection::vec(1_000u64..3_000_000, 1..8),
        starts in proptest::collection::vec(0u64..2_000, 8),
        seed in 0u64..1000,
    ) {
        let senders = sizes.len();
        let flows: Vec<_> = sizes
            .iter()
            .enumerate()
            .map(|(i, &sz)| (i + 1, sz, starts[i % starts.len()], 0u8))
            .collect();
        let cc = CcSpec::Swift { queuing: Time::from_us(4), scaling: false };
        let res = run_micro(senders, flows.clone(), cc, 1, false, seed);
        prop_assert_eq!(res.counters.drops, 0);
        for (i, r) in res.records.iter().enumerate() {
            let (_, size, start_us, _) = flows[i];
            prop_assert!(r.delivered <= size);
            if let Some(fct) = r.fct() {
                prop_assert_eq!(r.delivered, size);
                // Lower bound: serialization at line rate + one-way path.
                let min_fct = Time::from_ns(size * 8 / 100) // 100 Gbps
                    .as_us_f64();
                prop_assert!(
                    fct.as_us_f64() > min_fct * 0.99,
                    "flow {} finished impossibly fast: {} < {}",
                    i, fct.as_us_f64(), min_fct
                );
                prop_assert!(r.finish.unwrap() >= Time::from_us(start_us));
            }
        }
    }

    /// PrioPlus with arbitrary priority assignments: no drops, bytes
    /// conserved, and when two clearly separated priorities contend, the
    /// higher one is never starved by the lower one.
    #[test]
    fn prioplus_conserves_and_never_starves_high(
        hi_size in 500_000u64..4_000_000,
        lo_size in 500_000u64..4_000_000,
        stagger_us in 0u64..500,
        seed in 0u64..1000,
    ) {
        let cc = CcSpec::PrioPlusSwift { policy: PrioPlusPolicy::paper_default(4) };
        let flows = vec![
            (1usize, lo_size, 0u64, 0u8),
            (2usize, hi_size, stagger_us, 3u8),
        ];
        let res = run_micro(2, flows, cc, 4, true, seed);
        prop_assert_eq!(res.counters.drops, 0);
        let hi = &res.records[1];
        prop_assert!(hi.finish.is_some(), "high priority flow starved");
        let fct = hi.fct().unwrap().as_us_f64();
        // Solo ideal time; strict priority bounds the slowdown to a small
        // constant (probing + channel delays + takeover time).
        let ideal = hi_size as f64 * 8.0 / 100e9 * 1e6 + 12.0;
        prop_assert!(
            fct < ideal * 3.0 + 300.0,
            "high-priority fct {fct}us vs ideal {ideal}us"
        );
    }

    /// Determinism: identical configuration and seed produce identical
    /// results, with noise enabled, for arbitrary mixes.
    #[test]
    fn runs_are_reproducible(
        sizes in proptest::collection::vec(10_000u64..1_000_000, 2..6),
        seed in 0u64..10_000,
    ) {
        let mk = || {
            let flows: Vec<_> = sizes
                .iter()
                .enumerate()
                .map(|(i, &sz)| (i + 1, sz, (i as u64) * 13, (i % 4) as u8))
                .collect();
            let cc = CcSpec::PrioPlusSwift { policy: PrioPlusPolicy::paper_default(4) };
            let res = run_micro(sizes.len(), flows, cc, 4, true, seed);
            res.records
                .iter()
                .map(|r| (r.finish.map(|t| t.as_ps()), r.delivered, r.retransmits))
                .collect::<Vec<_>>()
        };
        prop_assert_eq!(mk(), mk());
    }
}
