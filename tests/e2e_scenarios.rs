//! Smoke tests of the three large-scale scenarios at tiny scale: they must
//! run, complete most flows, and show the paper's qualitative orderings.

use experiments::coflowsched::{self, CoflowConfig};
use experiments::flowsched::{self, FlowSchedConfig};
use experiments::mltrain::{self, MlConfig};
use experiments::Scheme;
use simcore::Time;

fn quick_flowsched(scheme: Scheme) -> flowsched::FlowSchedResult {
    let mut cfg = FlowSchedConfig::new(scheme, 4);
    cfg.duration = Time::from_ms(2);
    cfg.load = 0.5;
    cfg.seed = 3;
    flowsched::run(&cfg)
}

#[test]
fn flow_scheduling_prioplus_runs_and_completes() {
    let r = quick_flowsched(Scheme::PrioPlusSwift);
    assert!(r.flows.len() > 50, "too few flows: {}", r.flows.len());
    assert!(r.completion > 0.8, "completion {}", r.completion);
    // Small flows (high prio) must beat large flows on slowdown.
    let small = r.mean_slowdown(|f| f.size < 300_000).unwrap();
    let large = r.mean_slowdown(|f| f.size >= 6_000_000);
    if let Some(large) = large {
        assert!(
            small < large * 1.5,
            "small {small} should not be much worse than large {large}"
        );
    }
}

#[test]
fn flow_scheduling_physical_star_runs() {
    let r = quick_flowsched(Scheme::PhysicalStarSwift);
    assert!(r.completion > 0.8, "completion {}", r.completion);
}

#[test]
fn flow_scheduling_no_cc_triggers_pfc_storms() {
    let nocc = quick_flowsched(Scheme::PhysicalStarNoCc);
    let pp = quick_flowsched(Scheme::PrioPlusSwift);
    assert!(
        nocc.pfc_pauses > pp.pfc_pauses * 2,
        "uncontrolled injection should pause far more: {} vs {}",
        nocc.pfc_pauses,
        pp.pfc_pauses
    );
}

#[test]
fn coflow_scenario_runs_and_prioplus_beats_baseline_on_small() {
    let mut base_cfg = CoflowConfig::new(Scheme::BaselineSwift, 0.4);
    base_cfg.duration = Time::from_ms(8);
    let base = coflowsched::run(&base_cfg);
    assert!(
        base.completion > 0.5,
        "baseline completion {}",
        base.completion
    );

    let mut pp_cfg = CoflowConfig::new(Scheme::PrioPlusSwift, 0.4);
    pp_cfg.duration = Time::from_ms(8);
    let pp = coflowsched::run(&pp_cfg);
    assert!(pp.completion > 0.5, "prioplus completion {}", pp.completion);

    // High-priority (small) coflows must not be systematically hurt vs the
    // no-priority baseline.
    let hi = coflowsched::mean_speedup(&pp, &base, |c| c.class >= 4);
    if let Some(hi) = hi {
        assert!(hi > 0.85, "high-prio coflow speedup {hi} should be >= ~1");
    }
}

#[test]
fn ml_training_prioplus_interleaves_better_than_baseline() {
    let base = mltrain::run(&MlConfig::new(Scheme::BaselineSwift));
    let pp = mltrain::run(&MlConfig::new(Scheme::PrioPlusSwift));
    let b = base.iterations("all");
    let p = pp.iterations("all");
    assert!(b > 0 && p > 0, "both must make progress: {b} vs {p}");
    // PrioPlus should not be slower overall than the baseline (the paper
    // reports +13%).
    assert!(
        p as f64 >= b as f64 * 0.85,
        "PrioPlus {p} iterations vs baseline {b}"
    );
    // Every job must make progress under PrioPlus (no starvation: the paper
    // stresses that priority assignment does not create unfairness).
    for j in &pp.jobs {
        assert!(j.iterations > 0, "job {} starved", j.name);
    }
}
