//! Snapshot/warm-start end-to-end suite — the pin for the third tentpole
//! of the batching/SoA/snapshot PR.
//!
//! - **Resume bit-identity (headline)**: a CC matrix of incast scenarios,
//!   interrupted mid-run, snapshotted, restored, and finished, must
//!   reproduce the uninterrupted summary byte-for-byte on every scheduler
//!   backend, with the invariant audit clean on both halves.
//! - **Digest soundness**: [`netsim::Sim::state_digest`] survives a
//!   snapshot round-trip unchanged and is backend-agnostic.
//! - **Completeness fleet**: buggify-style tampers ([`StateTamper`])
//!   mutate one class of simulator state at a time — counters, RNG
//!   streams, streaming sketches, fluid backlog — and the digest must
//!   notice every one; classes absent from a run must report `false`
//!   and leave the digest alone.
//! - **Warm-start differential**: `experiments::sweep::run_warm` over a
//!   prefix-sharing config family must be bit-identical to cold
//!   per-config runs, serial and parallel, with the cache accounting
//!   exactly one warmup per group.

use experiments::golden::summarize;
use experiments::micro::{Micro, MicroEnv};
use experiments::sweep::{run_warm, WarmCache};
use netsim::fluid::BackgroundLoad;
use netsim::{
    FlowSpec, NoiseModel, SchedKind, Sim, SimConfig, SimResult, StateTamper, SwitchConfig,
    Topology,
};
use simcore::{Rate, Time};
use transport::{CcSpec, PrioPlusPolicy};

/// The CC matrix: every transport family the simulator ships, by name.
/// HPCC needs INT-enabled switches; the scenario builder handles that.
fn cc_matrix() -> Vec<(&'static str, CcSpec)> {
    vec![
        (
            "prioplus_swift",
            CcSpec::PrioPlusSwift {
                policy: PrioPlusPolicy::paper_default(2),
            },
        ),
        (
            "prioplus_ledbat",
            CcSpec::PrioPlusLedbat {
                policy: PrioPlusPolicy::paper_default(2),
            },
        ),
        (
            "swift",
            CcSpec::Swift {
                queuing: Time::from_us(4),
                scaling: false,
            },
        ),
        (
            "ledbat",
            CcSpec::Ledbat {
                queuing: Time::from_us(4),
            },
        ),
        (
            "dctcp",
            CcSpec::D2tcp {
                deadline_factor: None,
            },
        ),
        (
            "d2tcp",
            CcSpec::D2tcp {
                deadline_factor: Some(2.0),
            },
        ),
        (
            "swift_weighted",
            CcSpec::SwiftWeighted {
                queuing: Time::from_us(4),
                weight: 2.0,
            },
        ),
        ("hpcc", CcSpec::Hpcc),
        ("blast", CcSpec::Blast),
    ]
}

/// Staggered 6-sender incast over one bottleneck with testbed noise —
/// enough congestion to exercise PFC, ECN, queue growth, and (for lossy
/// configs) retransmission state on both sides of the snapshot horizon.
fn incast(cc: &CcSpec, sched: SchedKind, audit: bool) -> Micro {
    let mut m = Micro::build(&MicroEnv {
        senders: 6,
        end: Time::from_ms(3),
        trace: false,
        noise: NoiseModel::testbed(),
        seed: 7,
        sched,
        switch: SwitchConfig {
            int_enabled: matches!(cc, CcSpec::Hpcc),
            ..Default::default()
        },
        ..Default::default()
    });
    if audit {
        m.sim.enable_audit();
    }
    for s in 1..=6usize {
        m.add_flow(
            s,
            120_000 + 40_000 * s as u64,
            Time::from_us(20 * s as u64),
            0,
            (s % 2) as u8,
            cc,
        );
    }
    m
}

/// Snapshot horizon for the matrix: mid-ramp, while queues are hot, flows
/// are live, and in-flight packets sit in the arena.
fn horizon() -> Time {
    Time::from_us(300)
}

fn assert_clean_audit(res: &SimResult, what: &str) {
    let report = res.audit.as_ref().expect("audit enabled");
    assert_eq!(
        report.total_violations, 0,
        "{what}: audit violations {:?}",
        report.violations
    );
}

/// Headline: for every CC scheme and every scheduler backend, interrupting
/// the run at the horizon, snapshotting, dropping the original simulator,
/// and finishing on a restore is byte-identical to running straight
/// through — and the invariant audit (whose mirror rides in the snapshot)
/// stays clean on both paths.
#[test]
fn cc_matrix_snapshot_resume_is_bit_identical_on_every_backend() {
    for (name, cc) in cc_matrix() {
        for kind in SchedKind::ALL {
            let straight_res = incast(&cc, kind, true).sim.run();
            assert_clean_audit(&straight_res, name);
            let straight = summarize(&straight_res);

            let mut m = incast(&cc, kind, true);
            m.sim.run_until(horizon());
            let snap = m.sim.snapshot();
            drop(m);
            let resumed_res = Sim::restore(&snap).run();
            assert_clean_audit(&resumed_res, name);
            let resumed = summarize(&resumed_res);

            assert_eq!(
                straight, resumed,
                "{name} on {}: snapshot/resume at {} changed the simulation",
                kind.name(),
                horizon()
            );
        }
    }
}

/// A snapshot is a pure fork point: restoring twice from the same snapshot
/// and finishing both forks yields byte-identical results (warm-start
/// sweeps restore one snapshot once per group member).
#[test]
fn one_snapshot_forks_into_identical_runs() {
    let cc = CcSpec::PrioPlusSwift {
        policy: PrioPlusPolicy::paper_default(2),
    };
    let mut m = incast(&cc, SchedKind::default(), false);
    m.sim.run_until(horizon());
    let snap = m.sim.snapshot();
    drop(m);
    let a = summarize(&Sim::restore(&snap).run());
    let b = summarize(&Sim::restore(&snap).run());
    assert_eq!(a, b, "two forks of one snapshot diverged");
}

/// The state digest survives a snapshot round-trip unchanged and — because
/// it hashes the queue in canonical `(at, seq)` order — is identical
/// across scheduler backends at the same simulated instant.
#[test]
fn state_digest_round_trips_and_is_backend_agnostic() {
    let cc = CcSpec::PrioPlusSwift {
        policy: PrioPlusPolicy::paper_default(2),
    };
    let mut digests = Vec::new();
    for kind in SchedKind::ALL {
        let mut m = incast(&cc, kind, false);
        m.sim.run_until(horizon());
        let original = m.sim.state_digest();
        let restored = Sim::restore(&m.sim.snapshot()).state_digest();
        assert_eq!(
            original,
            restored,
            "snapshot round-trip moved the digest on {}",
            kind.name()
        );
        digests.push(original);
    }
    assert!(
        digests.windows(2).all(|w| w[0] == w[1]),
        "state digest differs across scheduler backends: {digests:016x?}"
    );
}

/// Streaming-stats run for the Sketch tamper class: `MicroEnv` has no
/// streaming knob, so build the Sim directly.
fn streaming_sim() -> Sim {
    let topo = Topology::single_switch(4, Rate::from_gbps(100), Time::from_us(3));
    let cfg = SimConfig {
        end_time: Time::from_ms(2),
        seed: 11,
        trace_flows: false,
        streaming_stats: true,
        ..Default::default()
    };
    let mut sim = Sim::new(&topo, cfg, SwitchConfig::default());
    let cc = CcSpec::Swift {
        queuing: Time::from_us(4),
        scaling: false,
    };
    for s in 1..=4u32 {
        let spec = FlowSpec::new(s, 0, 200_000, Time::from_us(10 * s as u64));
        let start = spec.start;
        sim.add_flow(spec, |p| cc.make(p, start));
    }
    sim
}

/// Hybrid packet/fluid run for the FluidBacklog tamper class: fluid
/// background mass against packet foreground, mirroring the `hybrid`
/// experiment's `from_shared_hosts` setup.
fn hybrid_sim() -> Sim {
    let hosts = 4; // 2 foreground senders + 2 background blast hosts
    let topo = Topology::single_switch(hosts, Rate::from_gbps(100), Time::from_us(3));
    let switch = hosts as u32 + 1; // hosts 0..=hosts, then the switch
    let trace: Vec<(Time, u64)> = (0..8u64).map(|i| (Time::from_us(i * 50), 60_000)).collect();
    let background = BackgroundLoad::from_shared_hosts(
        (switch, 0),
        &trace,
        2,
        Rate::from_gbps(100).as_bps(),
        SimConfig::default().mtu,
    );
    let cfg = SimConfig {
        end_time: Time::from_ms(2),
        seed: 13,
        trace_flows: false,
        background: Some(background),
        ..Default::default()
    };
    let mut sim = Sim::new(&topo, cfg, SwitchConfig::default());
    let cc = CcSpec::Swift {
        queuing: Time::from_us(4),
        scaling: false,
    };
    for s in 1..=2u32 {
        let spec = FlowSpec::new(s, 0, 300_000, Time::from_us(5 * s as u64));
        let start = spec.start;
        sim.add_flow(spec, |p| cc.make(p, start));
    }
    sim
}

/// Completeness fleet, part 1: on a pure packet run, the Counter and Rng
/// tampers land and move the digest; the Sketch and FluidBacklog classes
/// are absent, so the hooks report `false` and the digest must not move.
#[test]
fn tamper_fleet_packet_run_counters_and_rng() {
    let cc = CcSpec::Swift {
        queuing: Time::from_us(4),
        scaling: false,
    };
    let mut m = incast(&cc, SchedKind::default(), false);
    m.sim.run_until(horizon());
    let base = m.sim.state_digest();
    let snap = m.sim.snapshot();
    for tamper in [StateTamper::Counter, StateTamper::Rng] {
        let mut fork = Sim::restore(&snap);
        assert!(
            fork.snap_mutate(tamper),
            "{tamper:?} must land on a packet run"
        );
        assert_ne!(
            base,
            fork.state_digest(),
            "state digest is blind to {tamper:?}"
        );
    }
    for tamper in [StateTamper::Sketch, StateTamper::FluidBacklog] {
        let mut fork = Sim::restore(&snap);
        assert!(
            !fork.snap_mutate(tamper),
            "{tamper:?} cannot land on a run without that state class"
        );
        assert_eq!(
            base,
            fork.state_digest(),
            "a no-op {tamper:?} must not move the digest"
        );
    }
}

/// Completeness fleet, part 2: the Sketch tamper lands on a streaming run
/// and the digest notices (via the sketch fingerprint).
#[test]
fn tamper_fleet_streaming_sketch() {
    let mut sim = streaming_sim();
    sim.run_until(Time::from_us(400));
    let base = sim.state_digest();
    let snap = sim.snapshot();
    let mut fork = Sim::restore(&snap);
    assert!(
        fork.snap_mutate(StateTamper::Sketch),
        "Sketch tamper must land when streaming_stats is on"
    );
    assert_ne!(base, fork.state_digest(), "digest is blind to the sketch");
    // And the streaming run itself resumes bit-identically.
    let straight = summarize(&streaming_sim().run());
    let resumed = summarize(&Sim::restore(&snap).run());
    assert_eq!(straight, resumed, "streaming run diverged after resume");
}

/// Completeness fleet, part 3: the FluidBacklog tamper lands on a hybrid
/// run and the digest notices (via the fluid mass fold).
#[test]
fn tamper_fleet_fluid_backlog() {
    let mut sim = hybrid_sim();
    sim.run_until(Time::from_us(400));
    let base = sim.state_digest();
    let snap = sim.snapshot();
    let mut fork = Sim::restore(&snap);
    assert!(
        fork.snap_mutate(StateTamper::FluidBacklog),
        "FluidBacklog tamper must land on a hybrid run"
    );
    assert_ne!(
        base,
        fork.state_digest(),
        "digest is blind to fluid backlog"
    );
    // And the hybrid run itself resumes bit-identically.
    let straight = summarize(&hybrid_sim().run());
    let resumed = summarize(&Sim::restore(&snap).run());
    assert_eq!(straight, resumed, "hybrid run diverged after resume");
}

/// One config of the prefix-sharing family: `seed` selects the warmup
/// prefix (the group key); the probe fields vary per config and only take
/// effect after the shared horizon.
#[derive(Clone)]
struct ProbeCfg {
    seed: u64,
    probe_size: u64,
    probe_virt: u8,
}

/// Shared warmup: 4 long flows ramping from t≈0. Everything here — and
/// nothing of the probe — is a function of `seed`, honoring `run_warm`'s
/// honest-key contract.
fn warm_prefix(seed: u64) -> Micro {
    let mut m = Micro::build(&MicroEnv {
        senders: 5,
        end: Time::from_ms(3),
        trace: false,
        noise: NoiseModel::testbed(),
        seed,
        ..Default::default()
    });
    let cc = CcSpec::PrioPlusSwift {
        policy: PrioPlusPolicy::paper_default(2),
    };
    for s in 1..=4usize {
        m.add_flow(s, 400_000, Time::from_us(10 * s as u64), 0, (s % 2) as u8, &cc);
    }
    m
}

/// Per-config continuation: sender 5 probes the warmed-up bottleneck.
/// Added strictly after the horizon in both the cold and warm paths, so
/// event sequence numbers match between them.
fn add_probe(sim: &mut Sim, cfg: &ProbeCfg) {
    let start = Time::from_us(700);
    let spec = FlowSpec {
        virt_prio: cfg.probe_virt,
        tag: cfg.probe_virt as u64,
        ..FlowSpec::new(5, 0, cfg.probe_size, start)
    };
    let cc = CcSpec::PrioPlusSwift {
        policy: PrioPlusPolicy::paper_default(2),
    };
    sim.add_flow(spec, |p| cc.make(p, start));
}

/// Warm-start differential: an 8-config family (2 warmup prefixes × 4
/// probes) swept through `run_warm` must match cold per-config runs
/// byte-for-byte — serial and parallel — with exactly one warmup miss per
/// prefix group.
#[test]
fn warm_start_sweep_matches_cold_runs_bit_for_bit() {
    let warm_until = Time::from_us(600);
    let configs: Vec<ProbeCfg> = [21u64, 22]
        .into_iter()
        .flat_map(|seed| {
            (0..4u8).map(move |i| ProbeCfg {
                seed,
                probe_size: 100_000 + 50_000 * i as u64,
                probe_virt: i % 2,
            })
        })
        .collect();

    // Cold reference: every config simulates its own warmup prefix. The
    // probe is added after run_until in this path too — adding it up
    // front would assign different event sequence numbers than the warm
    // path and the comparison would not be apples-to-apples.
    let cold: Vec<String> = configs
        .iter()
        .map(|cfg| {
            let mut m = warm_prefix(cfg.seed);
            m.sim.run_until(warm_until);
            add_probe(&mut m.sim, cfg);
            summarize(&m.sim.run())
        })
        .collect();

    for jobs in [1, 3] {
        let report = run_warm(
            &configs,
            jobs,
            |cfg| cfg.seed,
            |cfg| {
                let mut m = warm_prefix(cfg.seed);
                m.sim.run_until(warm_until);
                m.sim.snapshot()
            },
            |cfg, mut sim| {
                add_probe(&mut sim, cfg);
                summarize(&sim.run())
            },
        );
        assert_eq!(
            report.cache,
            WarmCache {
                groups: 2,
                hits: 6,
                misses: 2,
            },
            "cache accounting (jobs={jobs})"
        );
        assert_eq!(
            report.results, cold,
            "warm-start sweep diverged from cold runs (jobs={jobs})"
        );
    }
}
