//! End-to-end behavior of the non-Swift transports: LEDBAT, HPCC, D2TCP,
//! blast, and the PrioPlus+LEDBAT integration.

use experiments::micro::{Micro, MicroEnv};
use netsim::SwitchConfig;
use simcore::Time;
use transport::{CcSpec, PrioPlusPolicy};

#[test]
fn ledbat_two_flows_share_and_complete() {
    let mut m = Micro::build(&MicroEnv {
        senders: 2,
        end: Time::from_ms(10),
        trace: false,
        ..Default::default()
    });
    let cc = CcSpec::Ledbat {
        queuing: Time::from_us(4),
    };
    for s in 1..=2 {
        m.add_flow(s, 12_500_000, Time::ZERO, 0, 0, &cc);
    }
    let res = m.sim.run();
    assert_eq!(res.completion_rate(), 1.0);
    let f0 = res.records[0].fct().unwrap().as_us_f64();
    let f1 = res.records[1].fct().unwrap().as_us_f64();
    // Both share: each takes roughly 2x the solo time (1ms).
    assert!(f0 > 1_500.0 && f1 > 1_500.0);
    assert!(f0.max(f1) < 3_200.0, "underutilized: {}", f0.max(f1));
}

#[test]
fn hpcc_keeps_queue_near_zero_at_high_utilization() {
    let mut m = Micro::build(&MicroEnv {
        senders: 4,
        end: Time::from_ms(10),
        trace: false,
        switch: SwitchConfig {
            int_enabled: true,
            ..Default::default()
        },
        ..Default::default()
    });
    m.monitor_bottleneck_queue(Time::from_us(10));
    m.monitor_bottleneck_throughput(Time::from_us(100));
    for s in 1..=4 {
        m.add_flow(s, 50_000_000, Time::ZERO, 0, 0, &CcSpec::Hpcc);
    }
    let res = m.sim.run();
    let (_, q) = &res.monitors[0];
    let (_, tput) = &res.monitors[1];
    let qmean = q.window_mean(3_000.0, 10_000.0).unwrap();
    let util = tput.window_mean(3_000.0, 10_000.0).unwrap();
    // HPCC's signature: near-eta utilization with a near-empty queue.
    assert!(util > 85.0, "HPCC utilization {util} Gbps");
    assert!(
        qmean < 100_000.0,
        "HPCC queue should stay near zero, got {qmean} bytes"
    );
}

#[test]
fn d2tcp_meets_deadline_alone() {
    let mut m = Micro::build(&MicroEnv {
        senders: 1,
        end: Time::from_ms(5),
        trace: false,
        ..Default::default()
    });
    let id = m.add_flow(
        1,
        5_000_000,
        Time::ZERO,
        0,
        0,
        &CcSpec::D2tcp {
            deadline_factor: Some(2.0),
        },
    );
    let res = m.sim.run();
    let fct = res.records[id as usize].fct().unwrap().as_us_f64();
    // Ideal ~412us; deadline 2x = 824us.
    assert!(fct < 824.0, "missed its own deadline alone: {fct}us");
}

#[test]
fn blast_fills_the_link_immediately() {
    let mut m = Micro::build(&MicroEnv {
        senders: 1,
        end: Time::from_ms(3),
        trace: false,
        ..Default::default()
    });
    m.add_flow(1, 12_500_000, Time::ZERO, 0, 0, &CcSpec::Blast);
    let res = m.sim.run();
    let fct = res.records[0].fct().unwrap().as_us_f64();
    // Pure line rate: 12500 wire packets of 1048 B = 1048us serialization
    // plus the one-way path; nothing slower than that.
    assert!(fct < 1_060.0, "blast too slow: {fct}");
    assert!(fct > 1_048.0, "impossibly fast: {fct}");
}

#[test]
fn prioplus_ledbat_strict_priority() {
    let mut m = Micro::build(&MicroEnv {
        senders: 2,
        end: Time::from_ms(6),
        trace: true,
        ..Default::default()
    });
    let cc = CcSpec::PrioPlusLedbat {
        policy: PrioPlusPolicy::paper_default(2),
    };
    let lo = m.add_flow(1, 50_000_000, Time::ZERO, 0, 0, &cc);
    let hi = m.add_flow(2, 25_000_000, Time::from_ms(1), 0, 1, &cc);
    let res = m.sim.run();
    let hi_fct = res.records[hi as usize].fct().expect("hi done").as_us_f64();
    assert!(
        hi_fct < 2_800.0,
        "PrioPlus+LEDBAT high prio too slow: {hi_fct}"
    );
    let tput = res.traces[&lo].throughput.as_ref().unwrap().series_gbps();
    let during = tput.window_mean(1_300.0, 2_500.0).unwrap_or(0.0);
    assert!(during < 10.0, "LEDBAT low prio kept {during} Gbps");
    let after_end = res.records[hi as usize].finish.unwrap().as_us_f64();
    let after = tput
        .window_mean(after_end + 500.0, after_end + 1_500.0)
        .unwrap_or(0.0);
    assert!(after > 60.0, "LEDBAT low prio reclaimed only {after} Gbps");
}

#[test]
fn weighted_swift_shares_by_weight() {
    // Two flows, weights 1 and 3, one queue: shares ~1:3 (§7's weighted
    // virtual priority building block).
    let mut m = Micro::build(&MicroEnv {
        senders: 2,
        end: Time::from_ms(10),
        trace: true,
        ..Default::default()
    });
    let lo = m.add_flow(
        1,
        100_000_000,
        Time::ZERO,
        0,
        0,
        &CcSpec::SwiftWeighted {
            queuing: Time::from_us(4),
            weight: 1.0,
        },
    );
    let hi = m.add_flow(
        2,
        100_000_000,
        Time::ZERO,
        0,
        0,
        &CcSpec::SwiftWeighted {
            queuing: Time::from_us(4),
            weight: 3.0,
        },
    );
    let res = m.sim.run();
    let g = |id: u32| {
        res.traces[&id]
            .throughput
            .as_ref()
            .unwrap()
            .series_gbps()
            .window_mean(4_000.0, 10_000.0)
            .unwrap_or(0.0)
    };
    let (glo, ghi) = (g(lo), g(hi));
    let ratio = ghi / glo.max(1e-9);
    assert!(
        (1.8..5.0).contains(&ratio),
        "weighted share ratio {ratio} (hi {ghi}, lo {glo}) should be ~3"
    );
    assert!(
        ghi + glo > 85.0,
        "weighted pair underutilizes: {}",
        ghi + glo
    );
}

#[test]
fn weighted_priority_inversion_with_many_light_flows() {
    // The §7 caveat: 8 unit-weight flows collectively out-compete one
    // weight-4 flow (4/12 expected share), breaking priority semantics.
    let mut m = Micro::build(&MicroEnv {
        senders: 9,
        end: Time::from_ms(10),
        trace: true,
        ..Default::default()
    });
    let heavy = m.add_flow(
        1,
        100_000_000,
        Time::ZERO,
        0,
        0,
        &CcSpec::SwiftWeighted {
            queuing: Time::from_us(4),
            weight: 4.0,
        },
    );
    for s in 2..=9 {
        m.add_flow(
            s,
            100_000_000,
            Time::ZERO,
            0,
            0,
            &CcSpec::SwiftWeighted {
                queuing: Time::from_us(4),
                weight: 1.0,
            },
        );
    }
    let res = m.sim.run();
    let gh = res.traces[&heavy]
        .throughput
        .as_ref()
        .unwrap()
        .series_gbps()
        .window_mean(4_000.0, 10_000.0)
        .unwrap_or(0.0);
    // Expected share 4/12 = 33 Gbps: the heavy flow does NOT get strict
    // priority (inversion), yet keeps more than a fair 1/9 share.
    assert!(gh < 60.0, "no inversion observed: heavy got {gh} Gbps");
    assert!(gh > 15.0, "heavy flow under fair share: {gh} Gbps");
}

#[test]
fn mixed_transports_coexist_on_one_queue() {
    // Sanity: heterogeneous CCs in one queue run to completion (the Meta
    // motivation from §2.2 about CC coexistence).
    let mut m = Micro::build(&MicroEnv {
        senders: 3,
        end: Time::from_ms(20),
        trace: false,
        switch: SwitchConfig {
            int_enabled: true,
            ..Default::default()
        },
        ..Default::default()
    });
    m.add_flow(
        1,
        5_000_000,
        Time::ZERO,
        0,
        0,
        &CcSpec::Swift {
            queuing: Time::from_us(4),
            scaling: false,
        },
    );
    m.add_flow(
        2,
        5_000_000,
        Time::ZERO,
        0,
        0,
        &CcSpec::Ledbat {
            queuing: Time::from_us(4),
        },
    );
    m.add_flow(3, 5_000_000, Time::ZERO, 0, 0, &CcSpec::Hpcc);
    let res = m.sim.run();
    assert_eq!(res.completion_rate(), 1.0);
}
