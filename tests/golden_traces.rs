//! Golden-trace pinning: each scenario in [`experiments::golden`] must
//! reproduce its checked-in summary byte-for-byte, and must reproduce it
//! again with the invariant audit enabled (proving the audit is purely
//! observational) with zero violations.
//!
//! On an intentional behavior change, regenerate the files with
//! `GOLDEN_BLESS=1 cargo test -p experiments --test golden_traces` and
//! review the diff like any other code change.

use experiments::golden::{cases, summarize, GoldenOpts};
use experiments::SchedKind;
use simcore::Time;
use std::path::PathBuf;

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/golden")
}

fn blessing() -> bool {
    std::env::var_os("GOLDEN_BLESS").is_some_and(|v| v == "1")
}

#[test]
fn golden_traces_match_the_pinned_summaries() {
    let dir = golden_dir();
    let mut mismatches = Vec::new();
    for case in cases() {
        let got = summarize(&(case.run)(GoldenOpts::default()));
        let path = dir.join(format!("{}.txt", case.name));
        if blessing() {
            std::fs::create_dir_all(&dir).expect("create tests/golden");
            std::fs::write(&path, &got).expect("write golden file");
            continue;
        }
        let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!(
                "missing golden file {} ({e}); run with GOLDEN_BLESS=1 to create it",
                path.display()
            )
        });
        if got != want {
            mismatches.push(format!(
                "== {} drifted from {} ==\n-- pinned --\n{want}\n-- got --\n{got}",
                case.name,
                path.display()
            ));
        }
    }
    assert!(
        mismatches.is_empty(),
        "behavioral drift against golden traces \
         (GOLDEN_BLESS=1 regenerates after review):\n{}",
        mismatches.join("\n")
    );
}

#[test]
fn golden_traces_are_identical_and_clean_under_audit() {
    for case in cases() {
        let plain = summarize(&(case.run)(GoldenOpts::default()));
        let res = (case.run)(GoldenOpts::audited(true));
        let audited = summarize(&res);
        assert_eq!(
            plain, audited,
            "{}: enabling the audit changed the simulation",
            case.name
        );
        let report = res.audit.as_ref().expect("audit enabled");
        assert_eq!(
            report.total_violations, 0,
            "{}: audit violations {:?}",
            case.name, report.violations
        );
    }
}

/// Snapshot/resume is bit-exact: interrupting each golden case mid-run,
/// snapshotting, and finishing on the restored simulator must reproduce
/// the uninterrupted summary byte-for-byte — at an early horizon (probing
/// the slow-start / PFC ramp) and a late one (deep steady state).
#[test]
fn golden_traces_survive_snapshot_resume() {
    for case in cases() {
        let straight = summarize(&(case.run)(GoldenOpts::default()));
        for at_ms in [1u64, 6] {
            let resumed = summarize(&(case.run)(GoldenOpts::resumed(Time::from_ms(at_ms))));
            assert_eq!(
                straight, resumed,
                "{}: snapshot/resume at {at_ms} ms changed the simulation",
                case.name
            );
        }
    }
}

/// Scheduler backends are pure performance knobs: every golden case must
/// summarize byte-for-byte identically under the binary heap, the 4-ary
/// heap, and the calendar queue. This pins the backends against the *full*
/// simulator (PFC, ECN, traces, monitors), not just the microbenchmark
/// surface the differential property test covers.
#[test]
fn golden_traces_are_bit_identical_across_scheduler_backends() {
    for case in cases() {
        let baseline = summarize(&(case.run)(GoldenOpts::on(SchedKind::Binary)));
        for kind in [SchedKind::Quad, SchedKind::Calendar] {
            let got = summarize(&(case.run)(GoldenOpts::on(kind)));
            assert_eq!(
                baseline, got,
                "{}: scheduler backend {} changed the simulation",
                case.name,
                kind.name()
            );
        }
    }
}
