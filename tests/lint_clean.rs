//! The workspace must be simlint-clean.
//!
//! `scripts/ci.sh` runs `cargo run -p simlint` as a CI leg, but this test
//! runs the same pass programmatically inside `cargo test`, so a
//! determinism-hazard regression (a stray `HashMap` in a sim-state crate, a
//! wall-clock `Instant`, an unseeded RNG call, ...) fails the ordinary test
//! suite too — not just the CI script.

use std::path::Path;

use simlint::{lint_workspace, Baseline};

fn workspace_root() -> &'static Path {
    // crates/simlint/../.. = the workspace root, independent of the
    // directory `cargo test` was invoked from.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/simlint has a workspace root two levels up")
}

#[test]
fn workspace_has_no_unallowed_findings() {
    let root = workspace_root();
    assert!(
        root.join("Cargo.toml").is_file(),
        "workspace root not found at {}",
        root.display()
    );
    let report = lint_workspace(root).expect("lint pass reads the workspace");
    assert!(
        report.files_scanned > 50,
        "suspiciously few files scanned ({}); did the walker break?",
        report.files_scanned
    );

    // The committed baseline (if any) is honored, exactly as the CI leg
    // honors it: the goal is to ratchet it down to empty, not to bypass it.
    let baseline_path = root.join("simlint.baseline");
    let baseline = match std::fs::read_to_string(&baseline_path) {
        Ok(text) => Baseline::parse(&text),
        Err(_) => Baseline::default(),
    };

    let unallowed: Vec<String> = report
        .unallowed(&baseline)
        .map(|(path, f)| {
            format!(
                "{}:{}:{}: [{}] {}",
                path,
                f.line,
                f.col,
                f.rule.name(),
                f.message
            )
        })
        .collect();
    assert!(
        unallowed.is_empty(),
        "simlint found {} unallowed finding(s):\n{}\nfix the sites, annotate with \
         // simlint::allow(rule, reason), or ratchet with `cargo run -p simlint -- --fix-allowlist`",
        unallowed.len(),
        unallowed.join("\n")
    );
}

#[test]
fn semantic_passes_run_in_the_full_workspace_scan() {
    // The symbol-index passes (R9–R11) must actually be exercising the
    // tree, not silently indexing nothing: every first-party crate is
    // discovered, the module graphs cover the sim-state crates, and the
    // match index saw the event loop's dispatch sites.
    let report = lint_workspace(workspace_root()).expect("lint pass reads the workspace");
    assert!(
        report.crates_indexed >= 8,
        "expected all first-party crates in the index, got {}",
        report.crates_indexed
    );
    assert!(
        report.modules_indexed >= 20,
        "suspiciously few modules in the cycle scope ({})",
        report.modules_indexed
    );
    assert!(
        report.matches_indexed >= 50,
        "suspiciously few match expressions indexed ({})",
        report.matches_indexed
    );
}

#[test]
fn no_stale_baseline_is_committed() {
    // A baseline with nothing left to tolerate would silently mask the
    // next regression (entries pin rule+path+line, and lines drift). The
    // CLI refuses to run with one; the committed tree must not carry one.
    let root = workspace_root();
    let report = lint_workspace(root).expect("lint pass reads the workspace");
    if report.unallowed(&Baseline::default()).count() == 0 {
        assert!(
            !root.join("simlint.baseline").exists(),
            "the workspace scan is clean: delete simlint.baseline (a stale \
             ratchet masks future regressions)"
        );
    }
}

#[test]
fn allow_annotations_in_tree_all_carry_reasons() {
    // Defense in depth for the annotation grammar itself: every allow that
    // suppresses a finding must have parsed with a non-empty reason.
    let report = lint_workspace(workspace_root()).expect("lint pass reads the workspace");
    for (path, f) in &report.findings {
        if let Some(reason) = &f.allowed {
            assert!(
                !reason.trim().is_empty(),
                "{path}:{}: allow annotation with empty reason",
                f.line
            );
        }
    }
}
