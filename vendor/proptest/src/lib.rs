//! Offline stand-in for the subset of the `proptest` crate this workspace
//! uses. crates.io is unreachable in the build environment, so the real
//! proptest cannot be fetched; this shim keeps the property tests running
//! as seeded random sweeps instead.
//!
//! Differences from real proptest, by design:
//!
//! - sampling is a fixed deterministic seed schedule (one substream per
//!   case), so failures are reproducible run-to-run but there is **no
//!   shrinking**: a failure reports the sampled case index and message;
//! - only the strategies the workspace needs exist: integer ranges,
//!   `any::<bool>()`, and `collection::vec` with an exact or ranged length.
//!
//! Test sources keep the upstream `proptest` syntax, so swapping the real
//! crate back in (when a registry is available) is a one-line manifest
//! change.

use std::fmt;
use std::ops::Range;

/// Error carried by `prop_assert!` failures through `Result` bodies.
#[derive(Clone, Debug)]
pub struct TestCaseError {
    msg: String,
}

impl TestCaseError {
    /// A failed-assertion error with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError { msg: msg.into() }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

/// Per-test configuration; only `cases` is honoured by the shim.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to execute per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic splitmix64 stream used to sample strategy values.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Stream for one test case: a fixed global seed mixed with the case
    /// index, so every case draws an independent substream.
    pub fn deterministic(case: u64) -> Self {
        TestRng {
            state: 0x9E37_79B9_7F4A_7C15 ^ case.wrapping_mul(0xA076_1D64_78BD_642F),
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`; `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }
}

/// A source of random values of one type.
pub trait Strategy {
    /// The value type produced.
    type Value;
    /// Sample one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.end > self.start, "empty strategy range");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize);

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// The strategy returned by [`any`].
    type Strategy: Strategy<Value = Self>;
    /// The canonical strategy for the type.
    fn arbitrary() -> Self::Strategy;
}

/// Strategy producing uniformly random `bool`s.
#[derive(Clone, Copy, Debug)]
pub struct AnyBool;

impl Strategy for AnyBool {
    type Value = bool;
    fn sample(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for bool {
    type Strategy = AnyBool;
    fn arbitrary() -> AnyBool {
        AnyBool
    }
}

/// The canonical strategy for `T` (`any::<bool>()` and friends).
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Length specification for [`vec`]: an exact length or a range.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.end > r.start, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// Strategy producing `Vec`s of values from an element strategy.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec` strategy with `size` elements (exact `usize` or a range).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span.max(1)) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Everything the tests import.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, proptest, Arbitrary, ProptestConfig, Strategy,
        TestCaseError, TestRng,
    };
}

/// Assert inside a property body; failure aborts the case via `Err`.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Equality assert inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, "assertion failed: {:?} != {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, $($fmt)+);
    }};
}

/// Declare property tests. Each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that samples `config.cases` deterministic cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!{ ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            for case in 0..config.cases {
                let mut __shim_rng = $crate::TestRng::deterministic(case as u64);
                $(let $arg = $crate::Strategy::sample(&($strat), &mut __shim_rng);)*
                let __shim_result: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(e) = __shim_result {
                    panic!(
                        "property failed on case {case}/{}: {e}\n\
                         (offline proptest shim: deterministic cases, no shrinking)",
                        config.cases
                    );
                }
            }
        }
        $crate::__proptest_fns!{ ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::deterministic(0);
        for _ in 0..10_000 {
            let v = Strategy::sample(&(5u64..17), &mut rng);
            assert!((5..17).contains(&v));
        }
    }

    #[test]
    fn vec_lengths_respect_spec() {
        let mut rng = TestRng::deterministic(1);
        for _ in 0..1_000 {
            let v = Strategy::sample(&crate::collection::vec(0u32..10, 2..5), &mut rng);
            assert!((2..5).contains(&v.len()));
        }
        let v = Strategy::sample(&crate::collection::vec(0u32..10, 8), &mut rng);
        assert_eq!(v.len(), 8);
    }

    #[test]
    fn sampling_is_deterministic() {
        let mut a = TestRng::deterministic(7);
        let mut b = TestRng::deterministic(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 8 })]

        #[test]
        fn macro_wires_strategies(x in 0u64..100, flag in any::<bool>()) {
            prop_assert!(x < 100);
            let _ = flag;
            prop_assert_eq!(x, x);
        }
    }
}
